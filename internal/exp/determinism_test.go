package exp

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"iiotds/internal/trace"
)

// render flattens a table to the exact bytes a user sees; byte equality
// of this string is the determinism contract under test.
func render(t *Table) string { return t.String() + "\n" + t.Markdown() }

// TestDeterminismSameSeedSameTable runs every registered experiment twice
// at Quick scale (each harness carries its own fixed seed) and asserts
// the rendered tables are byte-identical — the DESIGN.md §5 regression
// gate.
func TestDeterminismSameSeedSameTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			a := render(r.Run(Quick))
			b := render(r.Run(Quick))
			if a != b {
				t.Fatalf("two runs of %s differ:\n--- first ---\n%s\n--- second ---\n%s", r.ID, a, b)
			}
		})
	}
}

// TestParallelMatchesSequential proves the tentpole property: for every
// experiment, the table produced with the trial fan-out across all cores
// is byte-identical to the one produced by a single sequential worker.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	// Parallelism is a package global, so the two configurations must not
	// interleave; run every experiment sequentially at 1 worker first.
	seq := map[string]string{}
	stats := map[string]RunStats{}
	SetParallelism(1)
	for _, r := range All() {
		tab := r.Run(Quick)
		seq[r.ID] = render(tab)
		stats[r.ID] = tab.Stats
	}
	SetParallelism(0) // default: GOMAXPROCS
	defer SetParallelism(0)
	for _, r := range All() {
		tab := r.Run(Quick)
		if got := render(tab); got != seq[r.ID] {
			t.Errorf("%s: parallel table differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				r.ID, seq[r.ID], got)
		}
		// The aggregated kernel stats are order-independent sums/maxes
		// (and the trace summary an order-independent merge), so they
		// must match too.
		if !reflect.DeepEqual(tab.Stats, stats[r.ID]) {
			t.Errorf("%s: parallel stats %+v differ from sequential %+v", r.ID, tab.Stats, stats[r.ID])
		}
	}
}

// TestTraceDeterminism turns the flight recorder on and asserts the
// strongest observability contract in ISSUE.md: for every experiment,
// the full JSONL event stream (every trial, in trial order) plus the
// rendered table is byte-identical between a single-worker run and a
// fully parallel run — and therefore also between repeated runs.
func TestTraceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	old := trace.DefaultCapacity()
	trace.SetDefaultCapacity(1 << 15)
	defer trace.SetDefaultCapacity(old)
	defer SetTraceSink(nil)

	// capture renders each experiment's complete trace: a JSONL dump per
	// trial (drained by the sink in trial-index order) plus the table.
	capture := func() map[string]string {
		out := map[string]string{}
		for _, r := range All() {
			var buf bytes.Buffer
			SetTraceSink(func(i int, rec *trace.Recorder) {
				fmt.Fprintf(&buf, "# trial %d\n", i)
				if err := rec.WriteJSONL(&buf, trace.All()); err != nil {
					t.Fatalf("%s: WriteJSONL: %v", r.ID, err)
				}
			})
			tab := r.Run(Quick)
			out[r.ID] = buf.String() + "\n" + render(tab)
		}
		return out
	}

	SetParallelism(1)
	seq := capture()
	SetParallelism(0) // default: GOMAXPROCS
	defer SetParallelism(0)
	par := capture()

	for _, r := range All() {
		if seq[r.ID] != par[r.ID] {
			a, b := seq[r.ID], par[r.ID]
			i := 0
			for i < len(a) && i < len(b) && a[i] == b[i] {
				i++
			}
			lo := max(0, i-200)
			t.Errorf("%s: parallel trace differs from sequential at byte %d:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				r.ID, i, a[lo:min(len(a), i+200)], b[lo:min(len(b), i+200)])
		}
	}
}

// TestStatsPopulated checks that the kernel-backed experiments actually
// report event counters through the runner.
func TestStatsPopulated(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	withKernels := map[string]bool{
		"E2": true, "E3": true, "E4": true, "E5": true, "E6": true,
		"E9": true, "E10": true, "E11": true, "E13": true, "F1": true,
	}
	for _, r := range All() {
		tab := r.Run(Quick)
		if tab.Stats.Trials == 0 {
			t.Errorf("%s: no trials reported", r.ID)
		}
		if withKernels[r.ID] && tab.Stats.Events.Fired == 0 {
			t.Errorf("%s: expected kernel events, stats = %+v", r.ID, tab.Stats)
		}
	}
}
