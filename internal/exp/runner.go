package exp

import (
	"strings"

	"iiotds/internal/trial"
)

// The parallel trial runner lives in internal/trial so other harnesses
// (notably the scenario property harness, internal/scenario) can fan
// work across the same deterministic engine without importing the
// experiment catalog. The aliases below keep exp.RunTrials/exp.Sweep as
// the canonical names experiments and cmd/iiotbench use; they are the
// same runner, so parallelism and the trace sink are shared
// process-wide knobs no matter which package set them.

// Trial is the context handed to one trial function (trial.Trial).
type Trial = trial.Trial

// RunStats aggregates the kernel counters of a sweep (trial.RunStats).
type RunStats = trial.RunStats

// SetParallelism sets the number of worker goroutines RunTrials fans
// trials across. n <= 0 resets to the default (GOMAXPROCS).
func SetParallelism(n int) { trial.SetParallelism(n) }

// Parallelism returns the effective worker count.
func Parallelism() int { return trial.Parallelism() }

// SetTraceSink installs fn as the recorder drain for subsequent
// RunTrials calls; nil removes it.
var SetTraceSink = trial.SetTraceSink

// RunTrials runs fn for trial indices 0..n-1 across Parallelism() worker
// goroutines and returns the results in index order, plus the aggregated
// kernel stats of every kernel the trials observed.
func RunTrials[R any](n int, fn func(t *Trial) R) ([]R, RunStats) {
	return trial.RunTrials(n, fn)
}

// Sweep runs fn once per parameter point and returns the results in
// point order.
func Sweep[P, R any](points []P, fn func(t *Trial, p P) R) ([]R, RunStats) {
	return trial.Sweep(points, fn)
}

// ByID returns the experiment with the given ID (case-insensitive) and
// whether it exists.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			return r, true
		}
	}
	return Runner{}, false
}
