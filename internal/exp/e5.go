package exp

import (
	"fmt"
	"math"
	"time"

	"iiotds/internal/core"
	"iiotds/internal/lowpan"
	"iiotds/internal/radio"
	"iiotds/internal/rpl"
	"iiotds/internal/sim"
)

// e5Result summarizes one detector run.
type e5Result struct {
	detectedFrac   float64       // nodes aware of the failure at the end
	meanDetection  time.Duration // mean time from kill to local awareness
	worstDetection time.Duration
	txFrames       float64 // radio frames spent after the kill
	energyJ        float64 // network energy spent after the kill
}

// runE5 builds an n-node grid, kills the root at killAt, and measures how
// the chosen detector spreads awareness.
func runE5(tr *Trial, n int, seed int64, useRNFD bool, probeEvery time.Duration, suspectTimeout time.Duration, observe time.Duration) e5Result {
	cfg := core.Config{Seed: seed, Topology: radio.GridTopology(n, 15)}
	if useRNFD {
		cfg.RNFD = &rpl.RNFDConfig{SuspectTimeout: suspectTimeout, Quorum: 2}
	}
	d := core.NewDeployment(cfg)
	tr.Observe(d.K)
	tr.ObserveTrace(d.Trace)
	d.RunUntilConverged(3 * time.Minute)
	// Steady-state warmup before the kill, identical for both detectors.
	// RNFD sentinels qualify on *proven* unicast history to the root
	// (TxCount/ETX gates in rnfd.go); killing the root seconds after
	// convergence leaves only one qualified sentinel — below quorum — so
	// the verdict never fires. Two minutes of DAO/probe traffic lets every
	// root neighbor accumulate that history, matching how a real
	// deployment would have been running long before the failure.
	d.K.RunFor(2 * time.Minute)

	detectedAt := make([]sim.Time, n)
	if !useRNFD {
		// Baseline: every node probes the root end-to-end on its own
		// timer and declares it dead after 3 consecutive unanswered
		// probes — the per-node approach RNFD's parallelism replaces.
		type probeState struct {
			missed  int
			pending bool
		}
		states := make([]*probeState, n)
		// Root echoes probes back to their source.
		d.Root().Router.Handle(lowpan.ProtoRaw, func(src radio.NodeID, payload []byte) {
			_ = d.Root().Router.SendTo(src, lowpan.ProtoRaw, payload)
		})
		for i := 1; i < n; i++ {
			i := i
			states[i] = &probeState{}
			d.Nodes[i].Router.Handle(lowpan.ProtoRaw, func(src radio.NodeID, payload []byte) {
				states[i].pending = false
				states[i].missed = 0
			})
			d.K.Every(probeEvery, probeEvery/4, func() {
				if detectedAt[i] != 0 || !d.Nodes[i].Up() {
					return
				}
				if states[i].pending {
					states[i].missed++
					if states[i].missed >= 3 {
						detectedAt[i] = d.K.Now()
						return
					}
				}
				states[i].pending = true
				_ = d.Nodes[i].Router.SendUp(lowpan.ProtoRaw, []byte{byte(i)})
			})
		}
	}

	killAt := d.K.Now()
	// Detection-specific traffic: the baseline's probes and echoes are
	// the only data-plane datagrams in the run; RNFD's suspicions and
	// verdicts are counted by its own counter. Steady-state routing
	// chatter (DIOs, DAOs) is identical across both runs and excluded.
	detectMsgs := func() float64 {
		if useRNFD {
			return d.Reg.Counter("rnfd.msgs_sent").Value()
		}
		return d.Reg.Counter("rpl.datagrams_forwarded").Value()
	}
	startMsgs := detectMsgs()
	var startEnergy float64
	for i := 0; i < n; i++ {
		startEnergy += d.M.Energy().Ledger(i).TotalJoules()
	}
	d.Crash(0)
	d.K.RunFor(observe)

	res := e5Result{}
	detected := 0
	var sum time.Duration
	for i := 1; i < n; i++ {
		var at sim.Time
		if useRNFD {
			if d.Nodes[i].Router.RootDead() {
				_, at = d.Nodes[i].RNFD.Dead()
			}
		} else {
			at = detectedAt[i]
		}
		if at > 0 {
			detected++
			lat := at - killAt
			sum += lat
			if lat > res.worstDetection {
				res.worstDetection = lat
			}
		}
	}
	res.detectedFrac = float64(detected) / float64(n-1)
	if detected > 0 {
		res.meanDetection = sum / time.Duration(detected)
	}
	res.txFrames = detectMsgs() - startMsgs
	var endEnergy float64
	for i := 0; i < n; i++ {
		endEnergy += d.M.Energy().Ledger(i).TotalJoules()
	}
	res.energyJ = endEnergy - startEnergy
	return res
}

// E5RNFD tests the paper's citation of RNFD [32] (§IV-B): exploiting
// parallelism — sentinels collaboratively watching the border router —
// detects its failure with far less traffic than every node probing the
// root end-to-end, and faster than conservative probe timeouts allow.
func E5RNFD(s Scale) *Table {
	n := 25
	observe := 4 * time.Minute
	if s == Full {
		n = 64
		observe = 6 * time.Minute
	}

	runs, rs := Sweep([]bool{true, false}, func(tr *Trial, useRNFD bool) e5Result {
		if useRNFD {
			return runE5(tr, n, 501, true, 0, 25*time.Second, observe)
		}
		return runE5(tr, n, 501, false, 30*time.Second, 0, observe)
	})
	rnfd, probes := runs[0], runs[1]

	t := &Table{
		ID:      "E5",
		Title:   "Border-router failure detection: collaborative (RNFD) vs per-node probing",
		Claim:   "§IV-B: parallelism improves border-router failure detection efficiency by orders of magnitude [32]",
		Columns: []string{"detector", "aware nodes", "mean detection", "worst detection", "detection msgs", "energy (J)"},
	}
	t.Stats = rs
	t.AddRow("RNFD", pct(rnfd.detectedFrac),
		fmt.Sprintf("%.1f s", rnfd.meanDetection.Seconds()),
		fmt.Sprintf("%.1f s", rnfd.worstDetection.Seconds()),
		f1(rnfd.txFrames), f2(rnfd.energyJ))
	t.AddRow("per-node probes", pct(probes.detectedFrac),
		fmt.Sprintf("%.1f s", probes.meanDetection.Seconds()),
		fmt.Sprintf("%.1f s", probes.worstDetection.Seconds()),
		f1(probes.txFrames), f2(probes.energyJ))

	frameRatio := probes.txFrames / math.Max(rnfd.txFrames, 1)
	t.Finding = fmt.Sprintf(
		"collaborative detection spends %.0fx fewer detection messages than per-node probing (%.0f vs %.0f) and reaches %.0f%% of nodes in %.0f s mean",
		frameRatio, rnfd.txFrames, probes.txFrames, rnfd.detectedFrac*100, rnfd.meanDetection.Seconds())
	return t
}
