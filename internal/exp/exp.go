// Package exp contains the experiment harnesses that operationalize the
// paper's claims (DESIGN.md §3). Each experiment builds its workload on
// the emulation substrate, runs it, and returns a Table whose rows are
// the "figures" this reproduction reports; EXPERIMENTS.md records the
// claim-vs-measured comparison.
//
// Every harness accepts a Scale so the same code serves the full
// reproduction (cmd/iiotbench) and the quick benchmark suite
// (bench_test.go).
package exp

import (
	"fmt"
	"strings"
)

// Scale selects experiment sizing.
type Scale int

// Scales.
const (
	// Quick runs in seconds — used by testing.B and smoke tests.
	Quick Scale = iota
	// Full runs the paper-scale parameter sweeps.
	Full
)

// Table is one experiment's result.
type Table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Claim   string     `json:"claim"` // the paper statement under test (section cited)
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// Finding is the measured one-line verdict on the claim's shape.
	Finding string `json:"finding"`
	// Stats aggregates the kernel counters of the trials behind this
	// table (events scheduled/fired/canceled, pool reuse, max heap
	// depth). It is reported by iiotbench -json but is not part of the
	// rendered table, so String()/Markdown() output stays byte-identical
	// across runner configurations.
	Stats RunStats `json:"stats"`
	// Notes carries side measurements that are real results but not
	// deterministic — wall-clock throughput, engine configuration. Like
	// Stats, Notes is reported by iiotbench -json only and never rendered
	// by String()/Markdown(), so table bytes stay machine-independent.
	Notes map[string]string `json:"notes,omitempty"`
}

// Note records a key/value side measurement (see Notes).
func (t *Table) Note(key, value string) {
	if t.Notes == nil {
		t.Notes = make(map[string]string)
	}
	t.Notes[key] = value
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("exp: row has %d cells, table %s has %d columns", len(cells), t.ID, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table for terminal output.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&sb, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			fmt.Fprintf(&sb, "  %-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintf(&sb, "finding: %s\n", t.Finding)
	return sb.String()
}

// Markdown renders the table as GitHub-flavored markdown (for
// EXPERIMENTS.md regeneration).
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&sb, "*Claim:* %s\n\n", t.Claim)
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	fmt.Fprintf(&sb, "\n*Measured:* %s\n", t.Finding)
	return sb.String()
}

// Runner is one experiment entry point.
type Runner struct {
	ID  string
	Run func(s Scale) *Table
}

// All returns every experiment in report order.
func All() []Runner {
	return []Runner{
		{"E1", E1Interop},
		{"E2", E2SizeScalability},
		{"E3", E3DutyCycleLatency},
		{"E4", E4Funneling},
		{"E5", E5RNFD},
		{"E6", E6Coexistence},
		{"E7", E7Redundancy},
		{"E8", E8HVAC},
		{"E9", E9Partitions},
		{"E10", E10SelfHealing},
		{"E11", E11Security},
		{"E13", E13MixedFleet},
		{"E14", E14ChurnSoak},
		{"E15", E15CityScale},
		{"E16", E16StoreIngest},
		{"F1", F1ThreeTier},
	}
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
func di(v int) string      { return fmt.Sprintf("%d", v) }
