package exp

import (
	"bytes"
	"fmt"
	"time"

	"iiotds/internal/clock"
	"iiotds/internal/gossip"
	"iiotds/internal/sim"
	"iiotds/internal/store"
)

// e9Run exercises one consistency mode through a partition episode.
type e9Run struct {
	mode            store.Mode
	opsBefore       float64 // success rate before the partition
	opsDuring       float64 // success rate during it (all replicas issuing)
	minorityDuring  float64 // success rate of minority-side replicas
	convergedAfter  bool
	convergenceTime time.Duration
}

func runE9(tr *Trial, mode store.Mode, seed int64, opsPerSec int, partitionLen time.Duration) e9Run {
	const n = 5
	k := sim.New(seed)
	tr.Observe(k)
	net := gossip.NewNetwork()
	names := []string{"a", "b", "c", "d", "e"}
	replicas := make([]*store.Replica, n)
	for i, name := range names {
		replicas[i] = store.NewReplica(net.Attach(name), clock.Kernel{K: k}, store.ReplicaConfig{
			Mode:          mode,
			ClusterSize:   n,
			QuorumTimeout: 2 * time.Second,
			Gossip:        gossip.Config{Interval: time.Second, Seed: seed + int64(i)},
		})
	}

	var phase string
	counts := map[string][2]int{} // phase -> {ok, total}
	minority := map[string][2]int{}
	record := func(m map[string][2]int, ph string, ok bool) {
		c := m[ph]
		if ok {
			c[0]++
		}
		c[1]++
		m[ph] = c
	}
	// Every replica writes its own key once per interval and reads a
	// shared key.
	interval := time.Second / time.Duration(opsPerSec)
	for i := range replicas {
		i := i
		k.Every(interval, interval/4, func() {
			ph := phase
			isMinority := i < 2
			replicas[i].Put(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("v@%d", k.Now())), func(err error) {
				record(counts, ph, err == nil)
				if isMinority {
					record(minority, ph, err == nil)
				}
			})
		})
	}

	phase = "before"
	k.RunFor(30 * time.Second)
	phase = "during"
	net.SetPartition([]string{"a", "b"}, []string{"c", "d", "e"})
	k.RunFor(partitionLen)
	phase = "after"
	net.Heal()
	healAt := k.Now()

	// Write one marker through a majority-side replica, then measure
	// how long until every replica's local view holds it (AP) — CP
	// serves it immediately once quorum is back.
	replicas[2].Put("marker", []byte("healed"), nil)
	var converged sim.Time
	k.Every(time.Second, 0, func() {
		if converged != 0 {
			return
		}
		for _, r := range replicas {
			if !bytes.Equal(r.LocalValue("marker"), []byte("healed")) {
				return
			}
		}
		converged = k.Now()
	})
	k.RunFor(time.Minute)

	rate := func(m map[string][2]int, ph string) float64 {
		c := m[ph]
		if c[1] == 0 {
			return 0
		}
		return float64(c[0]) / float64(c[1])
	}
	out := e9Run{
		mode:           mode,
		opsBefore:      rate(counts, "before"),
		opsDuring:      rate(counts, "during"),
		minorityDuring: rate(minority, "during"),
	}
	if converged != 0 {
		out.convergedAfter = true
		out.convergenceTime = converged - healAt
	}
	for _, r := range replicas {
		r.Stop()
	}
	return out
}

// E9Partitions tests §V-C via Brewer's CAP theorem [43]: a quorum (CP)
// store refuses minority-side operations during a partition, while the
// CRDT (AP) store stays fully available everywhere and converges after
// the heal — the design §V-C prescribes for always-on industrial systems.
func E9Partitions(s Scale) *Table {
	partitionLen := time.Minute
	ops := 1
	if s == Full {
		partitionLen = 5 * time.Minute
		ops = 4
	}

	t := &Table{
		ID:      "E9",
		Title:   "Replicated store availability under network partitions",
		Claim:   "§V-C: partition-tolerant always-on operation requires AP designs (eventual consistency + CRDTs) [43,44]",
		Columns: []string{"mode", "ops ok (healthy)", "ops ok (partition)", "minority ops ok", "converged after heal", "convergence"},
	}
	modes := []store.Mode{store.ModeCP, store.ModeAP}
	runs, rs := Sweep(modes, func(tr *Trial, mode store.Mode) e9Run {
		return runE9(tr, mode, 901, ops, partitionLen)
	})
	t.Stats = rs
	var cp, ap e9Run
	for i, mode := range modes {
		r := runs[i]
		conv := "n/a"
		if r.convergedAfter {
			conv = fmt.Sprintf("%.1f s", r.convergenceTime.Seconds())
		}
		t.AddRow(mode.String(), pct(r.opsBefore), pct(r.opsDuring), pct(r.minorityDuring),
			fmt.Sprintf("%v", r.convergedAfter), conv)
		if mode == store.ModeCP {
			cp = r
		} else {
			ap = r
		}
	}
	t.Finding = fmt.Sprintf(
		"during the partition the CP minority served %.0f%% of operations vs AP's %.0f%%; AP replicas reconverged %.1f s after healing",
		cp.minorityDuring*100, ap.minorityDuring*100, ap.convergenceTime.Seconds())
	return t
}
