package mac

import (
	"fmt"
	"time"

	"iiotds/internal/metrics"
	"iiotds/internal/netbuf"
	"iiotds/internal/radio"
	"iiotds/internal/sim"
	"iiotds/internal/trace"
)

// TDMAConfig configures the synchronized-pipeline MAC. Slots are global:
// all nodes share the epoch structure and slot boundaries (the tight time
// synchronization Dozer-class protocols maintain; the simulation gives it
// to us for free, a real deployment pays a small beaconing cost for it).
type TDMAConfig struct {
	Config
	// SlotDuration is the length of one slot (default 10 ms), sized to
	// fit a data frame plus its in-slot ACK.
	SlotDuration time.Duration
	// SlotsPerEpoch is the number of slots in an epoch.
	SlotsPerEpoch int
	// TxSlot is the slot index in which this node may transmit.
	// Negative means the node never transmits (e.g., the root).
	TxSlot int
	// RxSlots are the slot indices during which this node listens
	// (typically its children's TxSlots).
	RxSlots []int
}

func (c *TDMAConfig) applyDefaults() {
	c.Config.applyDefaults()
	if c.SlotDuration == 0 {
		c.SlotDuration = 10 * time.Millisecond
	}
	if c.SlotsPerEpoch == 0 {
		c.SlotsPerEpoch = 10
	}
}

// TDMA is a synchronized staggered-slot MAC. With slots assigned by
// descending tree depth, a packet generated at a leaf traverses one hop
// per slot and reaches the root within a single epoch — the paper's
// "highly synchronous end-to-end communication involving tight
// coordination of multiple devices" (§IV-B). Latency is hops×slot instead
// of hops×(wake interval/2), and the radio is on only during owned slots.
type TDMA struct {
	m   *radio.Medium
	k   *sim.Kernel
	id  radio.NodeID
	cfg TDMAConfig

	handler Handler
	q       sendq
	seq     uint16
	attempt int
	dedup   *dedup

	started bool
	stopped bool
	pending []sim.Event

	awaitAckSeq uint16
	awaitAckTo  radio.NodeID
	gotAck      bool
	seqAssigned bool

	endTxFn func() // prebuilt endTxSlot closure
}

var _ MAC = (*TDMA)(nil)

// NewTDMA creates a TDMA MAC for node id on medium m.
func NewTDMA(m *radio.Medium, id radio.NodeID, cfg TDMAConfig) *TDMA {
	cfg.applyDefaults()
	if cfg.TxSlot >= cfg.SlotsPerEpoch {
		panic(fmt.Sprintf("mac: TxSlot %d outside epoch of %d slots", cfg.TxSlot, cfg.SlotsPerEpoch))
	}
	for _, s := range cfg.RxSlots {
		if s < 0 || s >= cfg.SlotsPerEpoch {
			panic(fmt.Sprintf("mac: RxSlot %d outside epoch of %d slots", s, cfg.SlotsPerEpoch))
		}
	}
	t := &TDMA{m: m, k: m.Kernel(), id: id, cfg: cfg, dedup: newDedup()}
	t.endTxFn = t.endTxSlot
	return t
}

// Name implements MAC.
func (t *TDMA) Name() string { return "tdma" }

// OnReceive implements MAC.
func (t *TDMA) OnReceive(h Handler) { t.handler = h }

// QueueLen implements MAC.
func (t *TDMA) QueueLen() int { return t.q.len() }

// Buffers implements MAC.
func (t *TDMA) Buffers() *netbuf.Pool { return t.m.Buffers() }

// Retune implements MAC.
func (t *TDMA) Retune(ch uint8) {
	t.cfg.Channel = ch
	if t.started {
		t.m.SetChannel(t.id, ch)
	}
}

// Reboot implements MAC.
func (t *TDMA) Reboot() {
	t.seq = 0
	t.seqAssigned = false
	t.dedup.reset()
}

// ForgetNeighbor implements MAC.
func (t *TDMA) ForgetNeighbor(id radio.NodeID) { t.dedup.forget(id) }

// Epoch returns the epoch length.
func (t *TDMA) Epoch() time.Duration {
	return time.Duration(t.cfg.SlotsPerEpoch) * t.cfg.SlotDuration
}

// guard is the intra-slot offset before data goes on the air.
func (t *TDMA) guard() time.Duration { return t.cfg.SlotDuration / 8 }

// Start aligns the node to the global slot structure.
func (t *TDMA) Start() {
	if t.started {
		return
	}
	t.started = true
	t.stopped = false
	t.m.SetChannel(t.id, t.cfg.Channel)
	t.m.SetListening(t.id, false)
	t.scheduleEpoch()
}

// Stop cancels the schedule and fails queued sends.
func (t *TDMA) Stop() {
	if !t.started {
		return
	}
	t.started = false
	t.stopped = true
	for _, e := range t.pending {
		e.Cancel()
	}
	t.pending = nil
	t.m.SetListening(t.id, false)
	t.q.drain()
	t.seqAssigned = false
}

// Send implements MAC.
func (t *TDMA) Send(to radio.NodeID, payload []byte, done DoneFunc) {
	if !t.started || t.cfg.TxSlot < 0 {
		if done != nil {
			done(false)
		}
		return
	}
	t.q.push(outItem{to: to, buf: copyIn(t.m.Buffers(), payload), done: done})
}

// SendBuf implements MAC.
func (t *TDMA) SendBuf(to radio.NodeID, b *netbuf.Buffer, done DoneFunc) {
	if !t.started || t.cfg.TxSlot < 0 {
		b.Release()
		if done != nil {
			done(false)
		}
		return
	}
	t.q.push(outItem{to: to, buf: b, done: done})
}

func (t *TDMA) scheduleEpoch() {
	if t.stopped {
		return
	}
	epoch := t.Epoch()
	now := t.k.Now()
	// Next epoch boundary at or after now.
	boundary := (now + epoch - 1) / epoch * epoch
	if boundary == now && now != 0 {
		boundary += epoch
	}
	t.pending = t.pending[:0]
	if t.cfg.TxSlot >= 0 {
		// Transmit a guard interval into the slot so receivers (whose
		// listen events fire at the boundary) are guaranteed awake.
		at := boundary + time.Duration(t.cfg.TxSlot)*t.cfg.SlotDuration + t.guard()
		t.pending = append(t.pending, t.k.At(at, func() { t.txSlot() }))
	}
	for _, s := range t.cfg.RxSlots {
		at := boundary + time.Duration(s)*t.cfg.SlotDuration
		t.pending = append(t.pending, t.k.At(at, func() { t.rxSlot() }))
	}
	// Re-arm for the next epoch just before it begins.
	t.pending = append(t.pending, t.k.At(boundary+epoch-time.Nanosecond, func() { t.scheduleEpoch() }))
}

func (t *TDMA) rxSlot() {
	if t.stopped {
		return
	}
	t.m.SetListening(t.id, true)
	t.m.Energy().Ledger(int(t.id)).Spend(metrics.StateListen, t.cfg.SlotDuration)
	t.k.Schedule(t.cfg.SlotDuration, func() {
		// Another slot may have turned the radio on again; only sleep
		// if no rx slot is in progress. Slots are non-overlapping by
		// construction, so unconditional off is correct here.
		if !t.stopped {
			t.m.SetListening(t.id, false)
		}
	})
}

func (t *TDMA) txSlot() {
	if t.stopped || t.q.len() == 0 {
		return
	}
	it := t.q.front()
	if !t.seqAssigned {
		t.seq++
		t.seqAssigned = true
		t.attempt = 0
		// Frame once into headroom; epoch retries reuse the buffer.
		frame(it.buf, KindData, t.seq)
	}
	t.gotAck = false
	t.awaitAckSeq = t.seq
	t.awaitAckTo = it.to
	t.m.Recorder().Emit(int32(t.id), trace.MACTx, int64(it.to), int64(t.attempt), 0, it.buf.Journey())
	// Listen after transmitting to catch the in-slot ACK.
	t.m.SetListening(t.id, true)
	air := t.m.Send(radio.Frame{
		From: t.id, To: it.to, Channel: t.cfg.Channel, Tenant: t.cfg.Tenant,
		Size: it.buf.Len(), Payload: it.buf,
	})
	t.m.Energy().Ledger(int(t.id)).Spend(metrics.StateListen, t.cfg.SlotDuration-t.guard()-air)
	t.pending = append(t.pending, t.k.Schedule(t.cfg.SlotDuration-t.guard()-time.Nanosecond, t.endTxFn))
}

func (t *TDMA) endTxSlot() {
	if t.stopped || t.q.len() == 0 {
		return
	}
	it := t.q.front()
	t.m.SetListening(t.id, false)
	ok := t.gotAck || it.to == radio.Broadcast
	if !ok {
		t.attempt++
		if t.attempt <= t.cfg.MaxRetries {
			t.m.Registry().CounterWith("mac.retries", metrics.L("mac", "tdma")).Inc()
			t.m.Recorder().Emit(int32(t.id), trace.MACRetry, int64(it.to), int64(t.attempt), 0, it.buf.Journey())
			return // retry in next epoch's tx slot
		}
		t.m.Registry().CounterWith("mac.tx_failed", metrics.L("mac", "tdma")).Inc()
		t.m.Recorder().Emit(int32(t.id), trace.MACTxFail, int64(it.to), int64(t.attempt), 0, it.buf.Journey())
	}
	fin := t.q.pop()
	fin.buf.Release()
	t.seqAssigned = false
	if fin.done != nil {
		fin.done(ok)
	}
}

// RadioReceive implements radio.Receiver.
func (t *TDMA) RadioReceive(f radio.Frame) {
	if !t.started || f.Payload == nil {
		return
	}
	kind, seq, payload, err := decode(f.Payload.Bytes())
	if err != nil {
		return
	}
	switch kind {
	case KindData:
		if f.To != t.id && f.To != radio.Broadcast {
			return
		}
		if f.To == t.id {
			ack := control(t.m.Buffers(), KindAck, seq)
			t.m.Send(radio.Frame{
				From: t.id, To: f.From, Channel: t.cfg.Channel,
				Tenant: t.cfg.Tenant, Size: ack.Len(), Payload: ack,
			})
			ack.Release()
		}
		if t.dedup.fresh(f.From, seq) && t.handler != nil {
			// Upper layers run in the context of this packet's journey;
			// anything they send synchronously continues it.
			js := t.m.Buffers().Journeys()
			prev := js.SetCurrent(f.Payload.Journey())
			t.handler(f.From, payload)
			js.SetCurrent(prev)
		}
	case KindAck:
		if f.To == t.id && seq == t.awaitAckSeq && f.From == t.awaitAckTo {
			t.gotAck = true
		}
	}
}
