package mac

import (
	"testing"
	"time"

	"iiotds/internal/radio"
	"iiotds/internal/sim"
)

// TestSendPathAllocFree is the alloc-regression gate for the zero-copy
// packet path (run in CI): one full acknowledged unicast round — Send
// copy-in, header prepend into headroom, radio flight, copy-on-fanout
// delivery, receive dispatch, ACK, sender completion — must not touch
// the heap once the pools are warm.
func TestSendPathAllocFree(t *testing.T) {
	k := sim.New(1)
	m := radio.NewMedium(k, radio.DefaultParams(), nil)
	macs := make([]*CSMA, 2)
	for i := 0; i < 2; i++ {
		idx := i
		m.Attach(radio.NodeID(i), radio.Position{X: float64(i) * 8}, radio.ReceiverFunc(func(f radio.Frame) {
			macs[idx].RadioReceive(f)
		}))
		macs[i] = NewCSMA(m, radio.NodeID(i), CSMAConfig{})
		macs[i].Start()
	}
	delivered := 0
	macs[0].OnReceive(func(from radio.NodeID, p []byte) { delivered++ })
	payload := make([]byte, 64)
	var ok bool
	done := func(d bool) { ok = d }
	round := func() {
		ok = false
		macs[1].Send(0, payload, done)
		for !ok {
			k.RunFor(5 * time.Millisecond)
		}
	}
	// Warm the pools: packet buffers, transmission structs, queue
	// arrays, kernel event pool, energy ledgers.
	for i := 0; i < 10; i++ {
		round()
	}
	if allocs := testing.AllocsPerRun(500, round); allocs != 0 {
		t.Fatalf("send path allocates %v times per round, want 0", allocs)
	}
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
}
