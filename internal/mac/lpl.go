package mac

import (
	"time"

	"iiotds/internal/metrics"
	"iiotds/internal/netbuf"
	"iiotds/internal/radio"
	"iiotds/internal/sim"
	"iiotds/internal/trace"
)

// LPLConfig configures the low-power-listening MAC.
type LPLConfig struct {
	Config
	// WakeInterval is the receiver check period (default 500 ms). The
	// paper's §IV-B point — "a packet may take seconds to be transmitted
	// over few wireless hops" — is a direct consequence of this knob.
	WakeInterval time.Duration
	// CheckDuration is how long each channel check keeps the radio on
	// (default 5 ms).
	CheckDuration time.Duration
	// StrobeGap is the pause between strobed data copies during which
	// the sender listens for the early ACK (default 2 ms).
	StrobeGap time.Duration
	// IdleTimeout is how long a woken receiver stays on without traffic
	// before sleeping again (default 20 ms).
	IdleTimeout time.Duration
}

func (c *LPLConfig) applyDefaults() {
	c.Config.applyDefaults()
	if c.WakeInterval == 0 {
		c.WakeInterval = 500 * time.Millisecond
	}
	if c.CheckDuration == 0 {
		c.CheckDuration = 5 * time.Millisecond
	}
	if c.StrobeGap == 0 {
		c.StrobeGap = 2 * time.Millisecond
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 20 * time.Millisecond
	}
}

// LPL is an X-MAC-style low-power-listening MAC. Receivers duty-cycle the
// radio with short periodic channel checks; senders strobe data copies for
// up to one wake interval until the receiver's early ACK arrives. Unicast
// latency per hop is therefore ~WakeInterval/2 on average, and the radio
// duty cycle is ~CheckDuration/WakeInterval.
type LPL struct {
	m   *radio.Medium
	k   *sim.Kernel
	id  radio.NodeID
	cfg LPLConfig

	handler Handler
	q       sendq
	sending bool
	seq     uint16
	dedup   *dedup

	started   bool
	stopped   bool
	wake      *sim.Repeater
	sleepEv   sim.Event
	awake     bool
	lastAwake sim.Time

	// Strobing state.
	strobing    bool
	strobeEnd   sim.Time
	awaitAckSeq uint16
	awaitAckTo  radio.NodeID
	gotAck      bool

	strobeFn func() // prebuilt strobeOnce closure
}

var _ MAC = (*LPL)(nil)

// NewLPL creates an LPL MAC for node id on medium m.
func NewLPL(m *radio.Medium, id radio.NodeID, cfg LPLConfig) *LPL {
	cfg.applyDefaults()
	l := &LPL{m: m, k: m.Kernel(), id: id, cfg: cfg, dedup: newDedup()}
	l.strobeFn = l.strobeOnce
	return l
}

// Name implements MAC.
func (l *LPL) Name() string { return "lpl" }

// OnReceive implements MAC.
func (l *LPL) OnReceive(h Handler) { l.handler = h }

// QueueLen implements MAC.
func (l *LPL) QueueLen() int { return l.q.len() }

// Buffers implements MAC.
func (l *LPL) Buffers() *netbuf.Pool { return l.m.Buffers() }

// Retune implements MAC.
func (l *LPL) Retune(ch uint8) {
	l.cfg.Channel = ch
	if l.started {
		l.m.SetChannel(l.id, ch)
	}
}

// Reboot implements MAC.
func (l *LPL) Reboot() {
	l.seq = 0
	l.dedup.reset()
}

// ForgetNeighbor implements MAC.
func (l *LPL) ForgetNeighbor(id radio.NodeID) { l.dedup.forget(id) }

// Start begins the periodic channel checks.
func (l *LPL) Start() {
	if l.started {
		return
	}
	l.started = true
	l.stopped = false
	l.m.SetChannel(l.id, l.cfg.Channel)
	l.m.SetListening(l.id, false)
	// Jitter staggers wake schedules across nodes, as real LPL networks do.
	l.wake = l.k.Every(l.cfg.WakeInterval, l.cfg.WakeInterval/10, func() { l.channelCheck() })
}

// Stop turns everything off and fails queued sends.
func (l *LPL) Stop() {
	if !l.started {
		return
	}
	l.started = false
	l.stopped = true
	if l.wake != nil {
		l.wake.Stop()
	}
	l.sleepEv.Cancel()
	l.setAwake(false)
	l.q.drain()
	l.sending = false
	l.strobing = false
}

func (l *LPL) setAwake(on bool) {
	if on == l.awake {
		return
	}
	if on {
		l.lastAwake = l.k.Now()
	} else {
		// Charge idle listening for the awake span.
		l.m.Energy().Ledger(int(l.id)).Spend(metrics.StateListen, l.k.Now()-l.lastAwake)
	}
	l.awake = on
	l.m.SetListening(l.id, on)
}

// channelCheck is the periodic wake-up: listen briefly, stay up if the
// channel is busy.
func (l *LPL) channelCheck() {
	if l.stopped || l.strobing {
		return
	}
	l.m.Recorder().Emit(int32(l.id), trace.MACWakeup, 0, 0, 0, 0)
	l.setAwake(true)
	l.scheduleSleep(l.cfg.CheckDuration)
}

// scheduleSleep (re)arms the radio-off decision d from now.
func (l *LPL) scheduleSleep(d time.Duration) {
	l.sleepEv.Cancel()
	l.sleepEv = l.k.Schedule(d, func() {
		if l.stopped || l.strobing {
			return
		}
		if l.m.CarrierSense(l.id) {
			// Mid-frame: stay up long enough to decode it.
			l.scheduleSleep(l.cfg.IdleTimeout)
			return
		}
		l.setAwake(false)
	})
}

// Send implements MAC.
func (l *LPL) Send(to radio.NodeID, payload []byte, done DoneFunc) {
	if !l.started {
		if done != nil {
			done(false)
		}
		return
	}
	l.enqueue(to, copyIn(l.m.Buffers(), payload), done)
}

// SendBuf implements MAC.
func (l *LPL) SendBuf(to radio.NodeID, b *netbuf.Buffer, done DoneFunc) {
	if !l.started {
		b.Release()
		if done != nil {
			done(false)
		}
		return
	}
	l.enqueue(to, b, done)
}

func (l *LPL) enqueue(to radio.NodeID, b *netbuf.Buffer, done DoneFunc) {
	l.q.push(outItem{to: to, buf: b, done: done})
	if !l.sending {
		l.startNext()
	}
}

func (l *LPL) startNext() {
	if l.q.len() == 0 || l.stopped {
		l.sending = false
		return
	}
	l.sending = true
	l.seq++
	it := l.q.front()
	l.strobing = true
	l.gotAck = false
	l.awaitAckSeq = l.seq
	l.awaitAckTo = it.to
	// The sender keeps its radio on for the whole strobe (to hear the
	// early ACK) and strobes for at most one full wake interval plus a
	// copy, which guarantees overlap with the target's channel check.
	l.setAwake(true)
	// Frame once into headroom; every strobe copy reuses the buffer.
	frame(it.buf, KindData, l.seq)
	air := l.m.Airtime(it.buf.Len())
	// Radio turnaround before the first copy: a node that starts
	// forwarding from its receive handler must not transmit while its
	// own link-layer ACK is still in the air.
	turnaround := l.cfg.StrobeGap + time.Duration(l.k.Rand().Int63n(int64(2*time.Millisecond)))
	l.strobeEnd = l.k.Now() + turnaround + l.cfg.WakeInterval + 2*(air+l.cfg.StrobeGap)
	l.k.Schedule(turnaround, l.strobeFn)
}

func (l *LPL) strobeOnce() {
	if l.stopped || !l.strobing {
		return
	}
	it := l.q.front()
	if l.gotAck {
		l.endStrobe(true)
		return
	}
	if l.k.Now() >= l.strobeEnd {
		// Broadcast strobes succeed by construction; unicast without an
		// ACK failed.
		l.endStrobe(it.to == radio.Broadcast)
		return
	}
	air := l.m.Send(radio.Frame{
		From: l.id, To: it.to, Channel: l.cfg.Channel, Tenant: l.cfg.Tenant,
		Size: it.buf.Len(), Payload: it.buf,
	})
	l.m.Registry().CounterWith("mac.strobes", metrics.L("mac", "lpl")).Inc()
	l.m.Recorder().Emit(int32(l.id), trace.MACStrobe, int64(it.to), 0, 0, it.buf.Journey())
	l.k.Schedule(air+l.cfg.StrobeGap, l.strobeFn)
}

func (l *LPL) endStrobe(ok bool) {
	l.strobing = false
	// Return to duty-cycled sleep shortly after finishing.
	l.scheduleSleep(l.cfg.StrobeGap)
	it := l.q.pop()
	jid := it.buf.Journey()
	it.buf.Release()
	if it.done != nil {
		it.done(ok)
	}
	if !ok {
		l.m.Registry().CounterWith("mac.tx_failed", metrics.L("mac", "lpl")).Inc()
		l.m.Recorder().Emit(int32(l.id), trace.MACTxFail, int64(it.to), 0, 0, jid)
	}
	l.startNext()
}

// RadioReceive implements radio.Receiver.
func (l *LPL) RadioReceive(f radio.Frame) {
	if !l.started || f.Payload == nil {
		return
	}
	kind, seq, payload, err := decode(f.Payload.Bytes())
	if err != nil {
		return
	}
	switch kind {
	case KindData:
		if f.To != l.id && f.To != radio.Broadcast {
			// Overheard strobe for someone else: go back to sleep soon.
			l.scheduleSleep(l.cfg.CheckDuration)
			return
		}
		if f.To == l.id {
			ack := control(l.m.Buffers(), KindAck, seq)
			l.m.Send(radio.Frame{
				From: l.id, To: f.From, Channel: l.cfg.Channel,
				Tenant: l.cfg.Tenant, Size: ack.Len(), Payload: ack,
			})
			ack.Release()
		}
		if l.dedup.fresh(f.From, seq) && l.handler != nil {
			// Upper layers run in the context of this packet's journey;
			// anything they send synchronously continues it.
			js := l.m.Buffers().Journeys()
			prev := js.SetCurrent(f.Payload.Journey())
			l.handler(f.From, payload)
			js.SetCurrent(prev)
		}
		// Stay up briefly in case more traffic follows (e.g., we are a
		// forwarding hop), then sleep.
		if !l.strobing {
			l.setAwake(true)
			l.scheduleSleep(l.cfg.IdleTimeout)
		}
	case KindAck:
		if f.To == l.id && l.strobing && seq == l.awaitAckSeq && f.From == l.awaitAckTo {
			l.gotAck = true
		}
	}
}
