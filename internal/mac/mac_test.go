package mac

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"iiotds/internal/metrics"
	"iiotds/internal/netbuf"
	"iiotds/internal/radio"
	"iiotds/internal/sim"
)

func TestFrameDecodeRoundTrip(t *testing.T) {
	f := func(kind byte, seq uint16, payload []byte) bool {
		b := netbuf.FromBytes(payload)
		frame(b, Kind(kind), seq)
		k, s, p, err := decode(b.Bytes())
		return err == nil && k == Kind(kind) && s == seq && bytes.Equal(p, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeShortFrame(t *testing.T) {
	if _, _, _, err := decode([]byte{1, 2}); err == nil {
		t.Fatal("expected error on short frame")
	}
}

func TestDedup(t *testing.T) {
	d := newDedup()
	if !d.fresh(1, 10) {
		t.Fatal("first frame should be fresh")
	}
	if d.fresh(1, 10) {
		t.Fatal("duplicate should not be fresh")
	}
	if !d.fresh(1, 11) {
		t.Fatal("new seq should be fresh")
	}
	if !d.fresh(2, 11) {
		t.Fatal("same seq from other node should be fresh")
	}
}

// buildPair returns a kernel, medium, and two started MACs within range.
func buildPair(mk func(m *radio.Medium, id radio.NodeID) MAC) (*sim.Kernel, *radio.Medium, MAC, MAC) {
	k := sim.New(7)
	m := radio.NewMedium(k, radio.DefaultParams(), nil)
	var a, b MAC
	m.Attach(1, radio.Position{X: 0}, radio.ReceiverFunc(func(f radio.Frame) { a.(radio.Receiver).RadioReceive(f) }))
	m.Attach(2, radio.Position{X: 10}, radio.ReceiverFunc(func(f radio.Frame) { b.(radio.Receiver).RadioReceive(f) }))
	a = mk(m, 1)
	b = mk(m, 2)
	a.Start()
	b.Start()
	return k, m, a, b
}

func TestCSMAUnicastDelivery(t *testing.T) {
	k, _, a, b := buildPair(func(m *radio.Medium, id radio.NodeID) MAC {
		return NewCSMA(m, id, CSMAConfig{})
	})
	var got []byte
	var from radio.NodeID
	b.OnReceive(func(f radio.NodeID, p []byte) { from, got = f, p })
	delivered := false
	a.Send(2, []byte("reading:42"), func(ok bool) { delivered = ok })
	k.RunFor(time.Second)
	if !delivered {
		t.Fatal("send not acknowledged")
	}
	if from != 1 || string(got) != "reading:42" {
		t.Fatalf("got %q from %d", got, from)
	}
}

func TestCSMABroadcast(t *testing.T) {
	k := sim.New(7)
	m := radio.NewMedium(k, radio.DefaultParams(), nil)
	macs := make([]*CSMA, 3)
	for i := range macs {
		id := radio.NodeID(i + 1)
		idx := i
		m.Attach(id, radio.Position{X: float64(i) * 5}, radio.ReceiverFunc(func(f radio.Frame) {
			macs[idx].RadioReceive(f)
		}))
		macs[i] = NewCSMA(m, id, CSMAConfig{})
		macs[i].Start()
	}
	got := 0
	macs[1].OnReceive(func(radio.NodeID, []byte) { got++ })
	macs[2].OnReceive(func(radio.NodeID, []byte) { got++ })
	ok := false
	macs[0].Send(radio.Broadcast, []byte("hello"), func(b bool) { ok = b })
	k.RunFor(time.Second)
	if !ok || got != 2 {
		t.Fatalf("broadcast delivered to %d nodes (ok=%v), want 2", got, ok)
	}
}

func TestCSMAFailsOnDeadLink(t *testing.T) {
	k, m, a, _ := buildPair(func(m *radio.Medium, id radio.NodeID) MAC {
		return NewCSMA(m, id, CSMAConfig{})
	})
	m.SetLinkPRR(1, 2, 0)
	result := true
	a.Send(2, []byte("x"), func(ok bool) { result = ok })
	k.RunFor(5 * time.Second)
	if result {
		t.Fatal("send over dead link reported success")
	}
	if m.Registry().CounterWith("mac.retries", metrics.L("mac", "csma")).Value() == 0 {
		t.Fatal("no retries recorded")
	}
}

func TestCSMARecoversFromLoss(t *testing.T) {
	k, m, a, b := buildPair(func(m *radio.Medium, id radio.NodeID) MAC {
		return NewCSMA(m, id, CSMAConfig{Config: Config{MaxRetries: 10}})
	})
	m.SetLinkPRR(1, 2, 0.5)
	okCount, rx := 0, 0
	b.OnReceive(func(radio.NodeID, []byte) { rx++ })
	for i := 0; i < 20; i++ {
		a.Send(2, []byte{byte(i)}, func(ok bool) {
			if ok {
				okCount++
			}
		})
	}
	k.RunFor(time.Minute)
	if okCount < 18 {
		t.Fatalf("only %d/20 delivered over 50%% lossy link with ARQ", okCount)
	}
	if rx < okCount {
		t.Fatalf("receiver saw %d, acks claim %d", rx, okCount)
	}
}

func TestCSMADedupOnRetransmit(t *testing.T) {
	// Break the ACK path so the sender retransmits, and verify the
	// receiver's handler fires once.
	k, m, a, b := buildPair(func(m *radio.Medium, id radio.NodeID) MAC {
		return NewCSMA(m, id, CSMAConfig{})
	})
	m.SetLinkPRR(2, 1, 0) // data gets through, ACKs are lost
	got := 0
	b.OnReceive(func(radio.NodeID, []byte) { got++ })
	a.Send(2, []byte("x"), nil)
	k.RunFor(time.Second)
	if got != 1 {
		t.Fatalf("handler fired %d times, want 1 (dedup)", got)
	}
}

func TestCSMASendAfterStopFails(t *testing.T) {
	_, _, a, _ := buildPair(func(m *radio.Medium, id radio.NodeID) MAC {
		return NewCSMA(m, id, CSMAConfig{})
	})
	a.Stop()
	called, result := false, true
	a.Send(2, []byte("x"), func(ok bool) { called, result = true, ok })
	if !called || result {
		t.Fatal("send after stop must fail immediately")
	}
}

func TestLPLUnicastWithinWakeInterval(t *testing.T) {
	const wake = 500 * time.Millisecond
	k, _, a, b := buildPair(func(m *radio.Medium, id radio.NodeID) MAC {
		return NewLPL(m, id, LPLConfig{WakeInterval: wake})
	})
	var deliveredAt sim.Time
	b.OnReceive(func(radio.NodeID, []byte) { deliveredAt = k.Now() })
	// Let wake schedules settle, then send.
	var sentAt sim.Time
	ok := false
	k.Schedule(2*time.Second, func() {
		sentAt = k.Now()
		a.Send(2, []byte("x"), func(r bool) { ok = r })
	})
	k.RunFor(5 * time.Second)
	if !ok {
		t.Fatal("LPL unicast not acknowledged")
	}
	lat := deliveredAt - sentAt
	if lat <= 0 || lat > wake+100*time.Millisecond {
		t.Fatalf("latency %v outside (0, wake+margin]", lat)
	}
}

func TestLPLDutyCycleLow(t *testing.T) {
	k, m, _, _ := buildPair(func(m *radio.Medium, id radio.NodeID) MAC {
		return NewLPL(m, id, LPLConfig{WakeInterval: 500 * time.Millisecond})
	})
	k.RunFor(60 * time.Second)
	// Idle node: ~5ms check per 500ms wake ≈ 1% duty cycle. The ledger
	// only counts accounted time, so compare listen time to sim time.
	on := m.Energy().Ledger(2).Duration(1) // StateListen
	frac := float64(on) / float64(60*time.Second)
	if frac > 0.03 {
		t.Fatalf("idle LPL listen fraction %v, want ≈0.01", frac)
	}
	if on == 0 {
		t.Fatal("no channel checks accounted")
	}
}

func TestLPLBroadcastReachesNeighbors(t *testing.T) {
	k := sim.New(3)
	m := radio.NewMedium(k, radio.DefaultParams(), nil)
	macs := make([]*LPL, 3)
	for i := range macs {
		id := radio.NodeID(i + 1)
		idx := i
		m.Attach(id, radio.Position{X: float64(i) * 5}, radio.ReceiverFunc(func(f radio.Frame) {
			macs[idx].RadioReceive(f)
		}))
		macs[i] = NewLPL(m, id, LPLConfig{WakeInterval: 200 * time.Millisecond})
		macs[i].Start()
	}
	got := map[int]bool{}
	macs[1].OnReceive(func(radio.NodeID, []byte) { got[1] = true })
	macs[2].OnReceive(func(radio.NodeID, []byte) { got[2] = true })
	k.Schedule(time.Second, func() { macs[0].Send(radio.Broadcast, []byte("evt"), nil) })
	k.RunFor(3 * time.Second)
	if !got[1] || !got[2] {
		t.Fatalf("broadcast strobe missed receivers: %v", got)
	}
}

func TestLPLEnergyFarBelowCSMA(t *testing.T) {
	run := func(mk func(m *radio.Medium, id radio.NodeID) MAC) float64 {
		k, m, a, _ := buildPair(mk)
		k.Every(10*time.Second, 0, func() { a.Send(2, []byte("periodic"), nil) })
		k.RunFor(5 * time.Minute)
		return m.Energy().Ledger(2).TotalJoules()
	}
	csma := run(func(m *radio.Medium, id radio.NodeID) MAC { return NewCSMA(m, id, CSMAConfig{}) })
	lpl := run(func(m *radio.Medium, id radio.NodeID) MAC {
		return NewLPL(m, id, LPLConfig{WakeInterval: 500 * time.Millisecond})
	})
	if lpl*5 > csma {
		t.Fatalf("LPL receiver energy %v J not ≪ CSMA %v J", lpl, csma)
	}
}

func TestTDMAPipelineChain(t *testing.T) {
	// 5-hop chain: node 5 → 4 → 3 → 2 → 1 (root). Slot i is owned by the
	// node at depth maxDepth-i, so the packet rides one epoch to the root.
	const n = 5
	const slot = 10 * time.Millisecond
	k := sim.New(9)
	m := radio.NewMedium(k, radio.DefaultParams(), nil)
	macs := make([]*TDMA, n+1) // 1-based
	for i := 1; i <= n; i++ {
		id := radio.NodeID(i)
		idx := i
		m.Attach(id, radio.Position{X: float64(i) * 10}, radio.ReceiverFunc(func(f radio.Frame) {
			macs[idx].RadioReceive(f)
		}))
	}
	// depth(node i) = i-1 relative to root node 1; maxDepth = 4.
	maxDepth := n - 1
	for i := 1; i <= n; i++ {
		depth := i - 1
		tx := maxDepth - depth
		var rx []int
		if i < n { // listens to child i+1, whose txSlot is maxDepth-(i)
			rx = []int{maxDepth - i}
		}
		cfg := TDMAConfig{SlotDuration: slot, SlotsPerEpoch: n, TxSlot: tx, RxSlots: rx}
		if i == 1 {
			cfg.TxSlot = -1 // root never transmits
		}
		macs[i] = NewTDMA(m, radio.NodeID(i), cfg)
		macs[i].Start()
	}
	// Forwarding: node i hands to i-1.
	for i := 2; i < n; i++ {
		i := i
		macs[i].OnReceive(func(_ radio.NodeID, p []byte) {
			macs[i].Send(radio.NodeID(i-1), p, nil)
		})
	}
	var arrival sim.Time
	macs[1].OnReceive(func(_ radio.NodeID, p []byte) {
		if string(p) == "leaf-report" && arrival == 0 {
			arrival = k.Now()
		}
	})
	var origin sim.Time
	k.Schedule(time.Millisecond, func() {
		origin = k.Now()
		macs[n].Send(radio.NodeID(n-1), []byte("leaf-report"), nil)
	})
	k.RunFor(2 * time.Second)
	if arrival == 0 {
		t.Fatal("packet never reached root")
	}
	lat := arrival - origin
	epoch := time.Duration(n) * slot
	if lat > 2*epoch {
		t.Fatalf("pipeline latency %v exceeds 2 epochs (%v)", lat, 2*epoch)
	}
}

func TestTDMARetriesAcrossEpochs(t *testing.T) {
	k := sim.New(11)
	m := radio.NewMedium(k, radio.DefaultParams(), nil)
	var a, b *TDMA
	m.Attach(1, radio.Position{X: 0}, radio.ReceiverFunc(func(f radio.Frame) { a.RadioReceive(f) }))
	m.Attach(2, radio.Position{X: 10}, radio.ReceiverFunc(func(f radio.Frame) { b.RadioReceive(f) }))
	a = NewTDMA(m, 1, TDMAConfig{Config: Config{MaxRetries: 8}, SlotsPerEpoch: 4, TxSlot: 0})
	b = NewTDMA(m, 2, TDMAConfig{SlotsPerEpoch: 4, TxSlot: -1, RxSlots: []int{0}})
	a.Start()
	b.Start()
	m.SetLinkPRR(1, 2, 0.5)
	got := 0
	b.OnReceive(func(radio.NodeID, []byte) { got++ })
	delivered := false
	a.Send(2, []byte("x"), func(ok bool) { delivered = ok })
	k.RunFor(10 * time.Second)
	if !delivered || got != 1 {
		t.Fatalf("delivered=%v got=%d over lossy link with epoch retries", delivered, got)
	}
}

func TestTDMASendWithoutTxSlotFails(t *testing.T) {
	k := sim.New(1)
	m := radio.NewMedium(k, radio.DefaultParams(), nil)
	var root *TDMA
	m.Attach(1, radio.Position{}, radio.ReceiverFunc(func(f radio.Frame) { root.RadioReceive(f) }))
	root = NewTDMA(m, 1, TDMAConfig{SlotsPerEpoch: 4, TxSlot: -1})
	root.Start()
	ok := true
	root.Send(2, []byte("x"), func(r bool) { ok = r })
	if ok {
		t.Fatal("root with no tx slot accepted a send")
	}
}

func TestTDMAInvalidSlotPanics(t *testing.T) {
	k := sim.New(1)
	m := radio.NewMedium(k, radio.DefaultParams(), nil)
	m.Attach(1, radio.Position{}, radio.ReceiverFunc(func(radio.Frame) {}))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTDMA(m, 1, TDMAConfig{SlotsPerEpoch: 4, TxSlot: 9})
}

func TestMACNames(t *testing.T) {
	k := sim.New(1)
	m := radio.NewMedium(k, radio.DefaultParams(), nil)
	m.Attach(1, radio.Position{}, radio.ReceiverFunc(func(radio.Frame) {}))
	if got := NewCSMA(m, 1, CSMAConfig{}).Name(); got != "csma" {
		t.Errorf("csma Name() = %q", got)
	}
	if got := NewLPL(m, 1, LPLConfig{}).Name(); got != "lpl" {
		t.Errorf("lpl Name() = %q", got)
	}
	if got := NewTDMA(m, 1, TDMAConfig{}).Name(); got != "tdma" {
		t.Errorf("tdma Name() = %q", got)
	}
}
