// Package mac implements medium-access control disciplines for the
// sensing-and-actuation layer. Three MACs cover the design space the paper
// discusses in §IV-B:
//
//   - CSMA: an always-on carrier-sense MAC — the latency baseline with no
//     energy savings.
//   - LPL: low-power listening with sender strobing and early ACK
//     (X-MAC-style, paper refs [26,27]) — receivers wake briefly every
//     interval, so multi-hop latency is dominated by wake intervals.
//   - TDMA: a synchronized transmission pipeline (Dozer/Koala-style,
//     paper refs [28-30]) — staggered slots let a packet traverse many
//     hops within one epoch, which is the paper's "highly synchronous
//     end-to-end communication" point.
//
// All MACs speak the same tiny header (kind, sequence number), perform
// unicast ACKs with bounded retries, deduplicate consecutive
// retransmissions, and account idle-listening energy so duty cycles are
// measurable.
package mac

import (
	"encoding/binary"
	"fmt"
	"time"

	"iiotds/internal/radio"
)

// Kind discriminates MAC frame types.
type Kind byte

const (
	// KindData carries an upper-layer payload.
	KindData Kind = 1
	// KindAck acknowledges a unicast data frame.
	KindAck Kind = 2
	// KindBeacon announces a receiver wake-up (receiver-initiated MACs).
	KindBeacon Kind = 3
)

// headerLen is the MAC header size: kind (1) + seq (2).
const headerLen = 3

// Handler receives decoded upper-layer payloads.
type Handler func(from radio.NodeID, payload []byte)

// DoneFunc reports the outcome of a Send: delivered is true when the
// frame was acknowledged (unicast) or fully strobed (broadcast).
type DoneFunc func(delivered bool)

// MAC is the interface all disciplines implement. Send enqueues one
// payload; frames are transmitted in FIFO order, one at a time. done may
// be nil.
type MAC interface {
	Start()
	Stop()
	Send(to radio.NodeID, payload []byte, done DoneFunc)
	OnReceive(h Handler)
	Name() string
	// QueueLen returns the number of payloads waiting (including the
	// one in flight).
	QueueLen() int
	// Retune moves the node to another radio channel (spectrum
	// coordination, §IV-C).
	Retune(ch uint8)
}

// encode builds the on-air payload for a MAC frame.
func encode(kind Kind, seq uint16, payload []byte) []byte {
	buf := make([]byte, headerLen+len(payload))
	buf[0] = byte(kind)
	binary.BigEndian.PutUint16(buf[1:3], seq)
	copy(buf[headerLen:], payload)
	return buf
}

// decode splits an on-air payload into its MAC header and upper payload.
func decode(raw []byte) (kind Kind, seq uint16, payload []byte, err error) {
	if len(raw) < headerLen {
		return 0, 0, nil, fmt.Errorf("mac: frame too short (%d bytes)", len(raw))
	}
	return Kind(raw[0]), binary.BigEndian.Uint16(raw[1:3]), raw[headerLen:], nil
}

// outItem is one queued send.
type outItem struct {
	to      radio.NodeID
	payload []byte
	done    DoneFunc
}

// dedup suppresses consecutive duplicate data frames per neighbor, which
// ARQ retransmissions produce.
type dedup struct {
	last map[radio.NodeID]uint16
	seen map[radio.NodeID]bool
}

func newDedup() *dedup {
	return &dedup{last: make(map[radio.NodeID]uint16), seen: make(map[radio.NodeID]bool)}
}

// fresh records (from, seq) and reports whether it was not a duplicate of
// the previous frame from that neighbor.
func (d *dedup) fresh(from radio.NodeID, seq uint16) bool {
	if d.seen[from] && d.last[from] == seq {
		return false
	}
	d.seen[from] = true
	d.last[from] = seq
	return true
}

// Config carries the knobs common to all MACs.
type Config struct {
	// Channel the node is tuned to.
	Channel uint8
	// Tenant is the administrative domain tag stamped on frames (§IV-C).
	Tenant string
	// MaxRetries bounds unicast retransmissions (default 3).
	MaxRetries int
	// AckTimeout is how long a sender waits for an ACK (default 5 ms;
	// TDMA ignores it and uses in-slot ACKs).
	AckTimeout time.Duration
}

func (c *Config) applyDefaults() {
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 5 * time.Millisecond
	}
}
