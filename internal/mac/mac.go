// Package mac implements medium-access control disciplines for the
// sensing-and-actuation layer. Three MACs cover the design space the paper
// discusses in §IV-B:
//
//   - CSMA: an always-on carrier-sense MAC — the latency baseline with no
//     energy savings.
//   - LPL: low-power listening with sender strobing and early ACK
//     (X-MAC-style, paper refs [26,27]) — receivers wake briefly every
//     interval, so multi-hop latency is dominated by wake intervals.
//   - TDMA: a synchronized transmission pipeline (Dozer/Koala-style,
//     paper refs [28-30]) — staggered slots let a packet traverse many
//     hops within one epoch, which is the paper's "highly synchronous
//     end-to-end communication" point.
//
// All MACs speak the same tiny header (kind, sequence number), perform
// unicast ACKs with bounded retries, deduplicate consecutive
// retransmissions, and account idle-listening energy so duty cycles are
// measurable.
package mac

import (
	"encoding/binary"
	"fmt"
	"time"

	"iiotds/internal/netbuf"
	"iiotds/internal/radio"
)

// Kind discriminates MAC frame types.
type Kind byte

const (
	// KindData carries an upper-layer payload.
	KindData Kind = 1
	// KindAck acknowledges a unicast data frame.
	KindAck Kind = 2
	// KindBeacon announces a receiver wake-up (receiver-initiated MACs).
	KindBeacon Kind = 3
)

// headerLen is the MAC header size: kind (1) + seq (2).
const headerLen = 3

// Handler receives decoded upper-layer payloads. payload is a view into
// the delivered packet buffer, valid only for the duration of the call:
// a handler that retains it past return must copy (netbuf.CloneBytes).
type Handler func(from radio.NodeID, payload []byte)

// DoneFunc reports the outcome of a Send: delivered is true when the
// frame was acknowledged (unicast) or fully strobed (broadcast).
type DoneFunc func(delivered bool)

// MAC is the interface all disciplines implement. Send enqueues one
// payload; frames are transmitted in FIFO order, one at a time. done may
// be nil.
type MAC interface {
	Start()
	Stop()
	// Send copies payload into a pooled buffer at call time, so the
	// caller's slice (e.g. a just-received view being forwarded) is free
	// for reuse the moment Send returns.
	Send(to radio.NodeID, payload []byte, done DoneFunc)
	// SendBuf is the zero-copy variant: it takes ownership of b (the
	// caller must Retain first to keep using it). The MAC prepends its
	// header into b's headroom, holds the buffer across ARQ retries, and
	// releases it when done fires (or on Stop).
	SendBuf(to radio.NodeID, b *netbuf.Buffer, done DoneFunc)
	OnReceive(h Handler)
	Name() string
	// QueueLen returns the number of payloads waiting (including the
	// one in flight).
	QueueLen() int
	// Retune moves the node to another radio channel (spectrum
	// coordination, §IV-C).
	Retune(ch uint8)
	// Buffers returns the packet-buffer pool SendBuf buffers must come
	// from (the medium's pool).
	Buffers() *netbuf.Pool
	// Reboot models a device restart while the MAC is stopped: the
	// sequence counter and the per-neighbor dedup state are cleared, as
	// a real node's RAM would be. Without this a rebooted node resumes
	// its old sequence numbering and stale receive state.
	Reboot()
	// ForgetNeighbor drops all receive-side state held about a neighbor
	// (its dedup entry). Peers call this when they learn the neighbor
	// rebooted, so the neighbor's restarted sequence numbering cannot
	// collide with the last sequence seen before the crash — the
	// collision would silently drop the first post-reboot frame as an
	// ARQ duplicate.
	ForgetNeighbor(id radio.NodeID)
}

// frame prepends the MAC header into b's headroom. Called exactly once
// per queued item, when it reaches the head of the queue and its
// sequence number is assigned; retransmissions reuse the framed buffer.
func frame(b *netbuf.Buffer, kind Kind, seq uint16) {
	h := b.Prepend(headerLen)
	h[0] = byte(kind)
	binary.BigEndian.PutUint16(h[1:3], seq)
}

// control builds a header-only frame (ACK, beacon) from the pool. The
// caller releases it right after radio.Medium.Send, which holds its own
// reference for the flight.
func control(p *netbuf.Pool, kind Kind, seq uint16) *netbuf.Buffer {
	b := p.Get()
	frame(b, kind, seq)
	return b
}

// decode splits an on-air payload into its MAC header and upper payload.
func decode(raw []byte) (kind Kind, seq uint16, payload []byte, err error) {
	if len(raw) < headerLen {
		return 0, 0, nil, fmt.Errorf("mac: frame too short (%d bytes)", len(raw))
	}
	return Kind(raw[0]), binary.BigEndian.Uint16(raw[1:3]), raw[headerLen:], nil
}

// outItem is one queued send. buf is owned by the queue: exactly one
// Release when the item leaves (delivered, failed, or Stop).
type outItem struct {
	to   radio.NodeID
	buf  *netbuf.Buffer
	done DoneFunc
}

// sendq is a FIFO of outItems over a reusable backing array: pop
// advances a head index instead of re-slicing, so the steady-state
// send/complete cycle never reallocates (re-slicing with append used to
// allocate a fresh 1-element array per send).
type sendq struct {
	items []outItem
	head  int
}

func (q *sendq) push(it outItem) {
	if q.head > 0 && q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	q.items = append(q.items, it)
}

// front returns the in-flight item. Only valid while len() > 0, and the
// pointer must not be held across a push (the array may move).
func (q *sendq) front() *outItem { return &q.items[q.head] }

func (q *sendq) pop() outItem {
	it := q.items[q.head]
	q.items[q.head] = outItem{}
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return it
}

func (q *sendq) len() int { return len(q.items) - q.head }

// drain empties the queue in FIFO order, releasing each item's buffer
// and failing its callback — the Stop path.
func (q *sendq) drain() {
	for q.len() > 0 {
		it := q.pop()
		it.buf.Release()
		if it.done != nil {
			it.done(false)
		}
	}
}

// copyIn moves payload into a pooled buffer — the Send convenience path.
func copyIn(p *netbuf.Pool, payload []byte) *netbuf.Buffer {
	b := p.Get()
	b.Append(payload)
	return b
}

// dedup suppresses consecutive duplicate data frames per neighbor, which
// ARQ retransmissions produce.
type dedup struct {
	last map[radio.NodeID]uint16
	seen map[radio.NodeID]bool
}

func newDedup() *dedup {
	return &dedup{last: make(map[radio.NodeID]uint16), seen: make(map[radio.NodeID]bool)}
}

// fresh records (from, seq) and reports whether it was not a duplicate of
// the previous frame from that neighbor.
func (d *dedup) fresh(from radio.NodeID, seq uint16) bool {
	if d.seen[from] && d.last[from] == seq {
		return false
	}
	d.seen[from] = true
	d.last[from] = seq
	return true
}

// forget drops the entry for one neighbor (see MAC.ForgetNeighbor).
func (d *dedup) forget(from radio.NodeID) {
	delete(d.last, from)
	delete(d.seen, from)
}

// reset drops all entries (a device reboot).
func (d *dedup) reset() {
	d.last = make(map[radio.NodeID]uint16)
	d.seen = make(map[radio.NodeID]bool)
}

// Config carries the knobs common to all MACs.
type Config struct {
	// Channel the node is tuned to.
	Channel uint8
	// Tenant is the administrative domain tag stamped on frames (§IV-C).
	Tenant string
	// MaxRetries bounds unicast retransmissions (default 3).
	MaxRetries int
	// AckTimeout is how long a sender waits for an ACK (default 5 ms;
	// TDMA ignores it and uses in-slot ACKs).
	AckTimeout time.Duration
}

func (c *Config) applyDefaults() {
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 5 * time.Millisecond
	}
}
