package mac

// Conformance suite: every discipline behind the MAC interface shares one
// observable contract — idempotent Start/Stop, immediate done(false) when
// not started, failed queued sends on Stop, FIFO delivery, duplicate
// suppression under ACK loss, and channel retuning. Each test body runs
// once per discipline so a new MAC gets the whole contract checked by
// adding one table entry.

import (
	"testing"
	"time"

	"iiotds/internal/netbuf"
	"iiotds/internal/radio"
	"iiotds/internal/sim"
)

// conformanceCase adapts one discipline to the shared suite. settle gives
// duty-cycled MACs time to establish wake/beacon schedules before the
// first send; window bounds how long one delivery may take.
type conformanceCase struct {
	name   string
	mk     func(m *radio.Medium, id radio.NodeID) MAC
	settle time.Duration
	window time.Duration
}

func conformanceCases() []conformanceCase {
	return []conformanceCase{
		{
			name: "csma",
			mk: func(m *radio.Medium, id radio.NodeID) MAC {
				return NewCSMA(m, id, CSMAConfig{Config: Config{MaxRetries: 10}})
			},
			settle: 100 * time.Millisecond,
			window: time.Second,
		},
		{
			name: "lpl",
			mk: func(m *radio.Medium, id radio.NodeID) MAC {
				return NewLPL(m, id, LPLConfig{WakeInterval: 200 * time.Millisecond, Config: Config{MaxRetries: 10}})
			},
			settle: time.Second,
			window: 3 * time.Second,
		},
		{
			name: "rimac",
			mk: func(m *radio.Medium, id radio.NodeID) MAC {
				return NewRIMAC(m, id, RIMACConfig{BeaconInterval: 200 * time.Millisecond, Config: Config{MaxRetries: 10}})
			},
			settle: time.Second,
			window: 3 * time.Second,
		},
	}
}

// forEachMAC runs fn once per discipline as a subtest.
func forEachMAC(t *testing.T, fn func(t *testing.T, c conformanceCase)) {
	t.Helper()
	for _, c := range conformanceCases() {
		c := c
		t.Run(c.name, func(t *testing.T) { fn(t, c) })
	}
}

// sendAfterSettle schedules one unicast a→b after the case's settle time
// and runs the kernel through the delivery window.
func sendAfterSettle(k *sim.Kernel, c conformanceCase, a MAC, payload []byte, done DoneFunc) {
	k.Schedule(c.settle, func() { a.Send(2, payload, done) })
	k.RunFor(c.settle + c.window)
}

func TestConformanceUnicastDelivery(t *testing.T) {
	forEachMAC(t, func(t *testing.T, c conformanceCase) {
		k, _, a, b := buildPair(c.mk)
		var got []byte
		var from radio.NodeID
		b.OnReceive(func(f radio.NodeID, p []byte) { from, got = f, p })
		ok := false
		sendAfterSettle(k, c, a, []byte("conform"), func(r bool) { ok = r })
		if !ok {
			t.Fatal("unicast not acknowledged")
		}
		if from != 1 || string(got) != "conform" {
			t.Fatalf("got %q from node %d", got, from)
		}
		if a.QueueLen() != 0 {
			t.Fatalf("queue not drained after delivery: %d", a.QueueLen())
		}
	})
}

func TestConformanceStartIdempotent(t *testing.T) {
	forEachMAC(t, func(t *testing.T, c conformanceCase) {
		k, _, a, b := buildPair(c.mk) // buildPair already started both
		a.Start()
		b.Start()
		a.Start()
		ok := false
		b.OnReceive(func(radio.NodeID, []byte) {})
		sendAfterSettle(k, c, a, []byte("x"), func(r bool) { ok = r })
		if !ok {
			t.Fatal("delivery broken by redundant Start")
		}
	})
}

func TestConformanceStopIdempotentAndSendFails(t *testing.T) {
	forEachMAC(t, func(t *testing.T, c conformanceCase) {
		_, _, a, _ := buildPair(c.mk)
		a.Stop()
		a.Stop() // second Stop must be a no-op, not a panic
		called, result := false, true
		a.Send(2, []byte("x"), func(ok bool) { called, result = true, ok })
		if !called || result {
			t.Fatal("send after stop must call done(false) immediately")
		}
		if a.QueueLen() != 0 {
			t.Fatal("stopped MAC queued a send")
		}
	})
}

func TestConformanceSendBeforeStartFails(t *testing.T) {
	forEachMAC(t, func(t *testing.T, c conformanceCase) {
		k := sim.New(5)
		m := radio.NewMedium(k, radio.DefaultParams(), nil)
		var mc MAC
		m.Attach(1, radio.Position{}, radio.ReceiverFunc(func(f radio.Frame) { mc.(radio.Receiver).RadioReceive(f) }))
		mc = c.mk(m, 1)
		called, result := false, true
		mc.Send(2, []byte("x"), func(ok bool) { called, result = true, ok })
		if !called || result {
			t.Fatal("send before start must call done(false) immediately")
		}
	})
}

func TestConformanceStopFailsQueuedSends(t *testing.T) {
	forEachMAC(t, func(t *testing.T, c conformanceCase) {
		_, _, a, _ := buildPair(c.mk)
		failed := 0
		for i := 0; i < 3; i++ {
			a.Send(2, []byte{byte(i)}, func(ok bool) {
				if !ok {
					failed++
				}
			})
		}
		a.Stop() // kernel never ran: all three are still queued or in flight
		if failed != 3 {
			t.Fatalf("%d/3 queued sends failed on Stop", failed)
		}
		if a.QueueLen() != 0 {
			t.Fatalf("queue not cleared on Stop: %d", a.QueueLen())
		}
	})
}

func TestConformanceRestartDelivers(t *testing.T) {
	forEachMAC(t, func(t *testing.T, c conformanceCase) {
		k, _, a, b := buildPair(c.mk)
		a.Stop()
		b.Stop()
		a.Start()
		b.Start()
		ok := false
		sendAfterSettle(k, c, a, []byte("again"), func(r bool) { ok = r })
		if !ok {
			t.Fatal("stop/start cycle broke delivery")
		}
	})
}

func TestConformanceFIFOOrder(t *testing.T) {
	forEachMAC(t, func(t *testing.T, c conformanceCase) {
		k, _, a, b := buildPair(c.mk)
		var order []byte
		b.OnReceive(func(_ radio.NodeID, p []byte) { order = append(order, p[0]) })
		k.Schedule(c.settle, func() {
			for i := byte(0); i < 5; i++ {
				a.Send(2, []byte{i}, nil)
			}
		})
		k.RunFor(c.settle + 5*c.window)
		if len(order) != 5 {
			t.Fatalf("delivered %d/5 on a clean link", len(order))
		}
		for i := byte(0); i < 5; i++ {
			if order[i] != i {
				t.Fatalf("out-of-order delivery: %v", order)
			}
		}
	})
}

// TestConformanceDuplicateSuppression makes the reverse link lossy so
// ACKs (and RI-MAC beacons) drop and senders retransmit; the receiver's
// handler must still see each payload at most once.
func TestConformanceDuplicateSuppression(t *testing.T) {
	forEachMAC(t, func(t *testing.T, c conformanceCase) {
		k, m, a, b := buildPair(c.mk)
		m.SetLinkPRR(2, 1, 0.5)
		counts := make(map[byte]int)
		b.OnReceive(func(_ radio.NodeID, p []byte) { counts[p[0]]++ })
		k.Schedule(c.settle, func() {
			for i := byte(0); i < 10; i++ {
				i := i
				k.Schedule(time.Duration(i)*c.window, func() { a.Send(2, []byte{i}, nil) })
			}
		})
		k.RunFor(c.settle + 12*c.window)
		delivered := 0
		for p, n := range counts {
			if n > 1 {
				t.Fatalf("payload %d delivered %d times (duplicates not suppressed)", p, n)
			}
			delivered++
		}
		if delivered < 5 {
			t.Fatalf("only %d/10 payloads delivered over 50%%-lossy reverse link with retries", delivered)
		}
	})
}

// TestConformanceBufferContract pins the receive-side buffer contract:
// the payload a handler sees is a view that dies when the handler
// returns. A handler that copies (netbuf.CloneBytes) keeps correct
// bytes; one that retains the raw view reads poison after pool reuse —
// never another packet's bytes — and dedup/retransmission still behave.
func TestConformanceBufferContract(t *testing.T) {
	forEachMAC(t, func(t *testing.T, c conformanceCase) {
		k, m, a, b := buildPair(c.mk)
		m.Buffers().SetPoison(true)
		m.SetLinkPRR(2, 1, 0.5) // lossy ACK path: sender retransmits from its retained buffer
		var retained, copied []byte
		deliveries := 0
		b.OnReceive(func(_ radio.NodeID, p []byte) {
			deliveries++
			retained = p // contract violation on purpose
			copied = netbuf.CloneBytes(p)
		})
		ok := false
		sendAfterSettle(k, c, a, []byte("retain-me"), func(r bool) { ok = r })
		if !ok {
			t.Fatal("unicast not acknowledged over lossy reverse link with retries")
		}
		if deliveries != 1 {
			t.Fatalf("handler fired %d times, want 1 (dedup under retransmission)", deliveries)
		}
		if string(copied) != "retain-me" {
			t.Fatalf("CloneBytes copy corrupted: %q", copied)
		}
		// The illegally retained view was scribbled when its buffer went
		// back to the pool — it must not silently keep the old bytes
		// (and must never show another packet's).
		if string(retained) == "retain-me" {
			t.Fatal("retained view survived pool reuse un-poisoned; use-after-release would hide")
		}
	})
}

// TestConformanceRebootSeqCollision pins the bug the recovery path must
// avoid: a node that sends exactly one frame, reboots (fresh sequence
// numbers), and sends again reuses its first sequence number. The peer's
// retained dedup entry matches, so the frame is ACKed (the sender sees
// success) but never delivered — a silent drop. This test documents the
// mechanism; the next one proves ForgetNeighbor is the cure.
func TestConformanceRebootSeqCollision(t *testing.T) {
	forEachMAC(t, func(t *testing.T, c conformanceCase) {
		k, _, a, b := buildPair(c.mk)
		deliveries := 0
		b.OnReceive(func(radio.NodeID, []byte) { deliveries++ })
		ok := false
		sendAfterSettle(k, c, a, []byte("pre-crash"), func(r bool) { ok = r })
		if !ok || deliveries != 1 {
			t.Fatalf("pre-crash unicast: ok=%v deliveries=%d", ok, deliveries)
		}
		a.Stop()
		a.Reboot() // fresh seq numbering — first send reuses the pre-crash seq
		a.Start()
		ok = false
		sendAfterSettle(k, c, a, []byte("post-reboot"), func(r bool) { ok = r })
		if !ok {
			t.Fatal("post-reboot unicast not acknowledged")
		}
		if deliveries != 1 {
			t.Fatalf("deliveries = %d: peer did not suppress the colliding seq — "+
				"if dedup semantics changed, revisit ForgetNeighbor and Deployment.Recover", deliveries)
		}
	})
}

// TestConformanceRebootForgetNeighborDelivers is the regression test for
// the recovery fix: when the peer forgets the rebooted neighbor (as
// Deployment.Recover now does), the first post-reboot unicast is
// delivered, not deduped.
func TestConformanceRebootForgetNeighborDelivers(t *testing.T) {
	forEachMAC(t, func(t *testing.T, c conformanceCase) {
		k, _, a, b := buildPair(c.mk)
		var got []string
		b.OnReceive(func(_ radio.NodeID, p []byte) { got = append(got, string(p)) })
		ok := false
		sendAfterSettle(k, c, a, []byte("pre-crash"), func(r bool) { ok = r })
		if !ok {
			t.Fatal("pre-crash unicast not acknowledged")
		}
		a.Stop()
		a.Reboot()
		b.ForgetNeighbor(1)
		a.Start()
		ok = false
		sendAfterSettle(k, c, a, []byte("post-reboot"), func(r bool) { ok = r })
		if !ok {
			t.Fatal("post-reboot unicast not acknowledged")
		}
		if len(got) != 2 || got[1] != "post-reboot" {
			t.Fatalf("deliveries = %v, want the post-reboot frame delivered", got)
		}
	})
}

func TestConformanceRetune(t *testing.T) {
	forEachMAC(t, func(t *testing.T, c conformanceCase) {
		k, _, a, b := buildPair(c.mk)
		a.Retune(7)
		b.Retune(7)
		ok := false
		sendAfterSettle(k, c, a, []byte("ch7"), func(r bool) { ok = r })
		if !ok {
			t.Fatal("delivery broken after both nodes retuned together")
		}
		// Split the pair across channels: the send must fail, not hang.
		a.Retune(3)
		done, result := false, true
		k.Schedule(c.settle, func() { a.Send(2, []byte("lost"), func(r bool) { done, result = true, r }) })
		k.RunFor(c.settle + 10*c.window)
		if !done {
			t.Fatal("cross-channel send never resolved")
		}
		if result {
			t.Fatal("cross-channel send reported success")
		}
	})
}
