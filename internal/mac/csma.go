package mac

import (
	"time"

	"iiotds/internal/metrics"
	"iiotds/internal/netbuf"
	"iiotds/internal/radio"
	"iiotds/internal/sim"
	"iiotds/internal/trace"
)

// CSMAConfig configures the always-on carrier-sense MAC.
type CSMAConfig struct {
	Config
	// BackoffSlot is the unit backoff duration (default 320 µs, the
	// 802.15.4 unit backoff period).
	BackoffSlot time.Duration
	// MaxBackoffExp bounds the binary-exponential backoff window
	// (default 5, i.e. up to 32 slots).
	MaxBackoffExp int
}

func (c *CSMAConfig) applyDefaults() {
	c.Config.applyDefaults()
	if c.BackoffSlot == 0 {
		c.BackoffSlot = 320 * time.Microsecond
	}
	if c.MaxBackoffExp == 0 {
		c.MaxBackoffExp = 5
	}
}

// CSMA is an always-listening carrier-sense MAC with binary exponential
// backoff and unicast ACKs. It provides the lowest latency and the highest
// energy cost: the baseline the duty-cycled MACs are compared against.
type CSMA struct {
	m   *radio.Medium
	k   *sim.Kernel
	id  radio.NodeID
	cfg CSMAConfig

	handler Handler
	q       sendq
	sending bool
	seq     uint16
	dedup   *dedup

	// In-flight unicast state.
	awaitAckSeq uint16
	awaitAckTo  radio.NodeID
	ackTimer    sim.Event
	attempt     int

	started bool
	accrual *sim.Repeater
	stopped bool

	// Prebuilt hot-path closures: creating these per send would put an
	// allocation on the zero-alloc path.
	firstTryFn   func()
	ackTimeoutFn func()
	bcastDoneFn  func()
}

var _ MAC = (*CSMA)(nil)

// NewCSMA creates a CSMA MAC for node id on medium m and attaches it as
// the node's radio receiver. The node must already be attached to the
// medium by the caller with this MAC as receiver, or use Attach.
func NewCSMA(m *radio.Medium, id radio.NodeID, cfg CSMAConfig) *CSMA {
	cfg.applyDefaults()
	c := &CSMA{m: m, k: m.Kernel(), id: id, cfg: cfg, dedup: newDedup()}
	c.firstTryFn = func() { c.tryTransmit(1) }
	c.ackTimeoutFn = c.onAckTimeout
	c.bcastDoneFn = func() { c.finish(true) }
	return c
}

// Name implements MAC.
func (c *CSMA) Name() string { return "csma" }

// OnReceive implements MAC.
func (c *CSMA) OnReceive(h Handler) { c.handler = h }

// QueueLen implements MAC.
func (c *CSMA) QueueLen() int { return c.q.len() }

// Buffers implements MAC.
func (c *CSMA) Buffers() *netbuf.Pool { return c.m.Buffers() }

// Retune implements MAC.
func (c *CSMA) Retune(ch uint8) {
	c.cfg.Channel = ch
	if c.started {
		c.m.SetChannel(c.id, ch)
	}
}

// Reboot implements MAC.
func (c *CSMA) Reboot() {
	c.seq = 0
	c.dedup.reset()
}

// ForgetNeighbor implements MAC.
func (c *CSMA) ForgetNeighbor(id radio.NodeID) { c.dedup.forget(id) }

// Start turns the radio on permanently.
func (c *CSMA) Start() {
	if c.started {
		return
	}
	c.started = true
	c.stopped = false
	c.m.SetChannel(c.id, c.cfg.Channel)
	c.m.SetListening(c.id, true)
	// Accrue idle-listening energy once per simulated second.
	c.accrual = c.k.Every(time.Second, 0, func() {
		c.m.Energy().Ledger(int(c.id)).Spend(metrics.StateListen, time.Second)
	})
}

// Stop turns the radio off and fails all queued sends.
func (c *CSMA) Stop() {
	if !c.started {
		return
	}
	c.started = false
	c.stopped = true
	c.m.SetListening(c.id, false)
	if c.accrual != nil {
		c.accrual.Stop()
	}
	c.ackTimer.Cancel()
	c.q.drain()
	c.sending = false
}

// Send implements MAC.
func (c *CSMA) Send(to radio.NodeID, payload []byte, done DoneFunc) {
	if !c.started {
		if done != nil {
			done(false)
		}
		return
	}
	c.enqueue(to, copyIn(c.m.Buffers(), payload), done)
}

// SendBuf implements MAC.
func (c *CSMA) SendBuf(to radio.NodeID, b *netbuf.Buffer, done DoneFunc) {
	if !c.started {
		b.Release()
		if done != nil {
			done(false)
		}
		return
	}
	c.enqueue(to, b, done)
}

func (c *CSMA) enqueue(to radio.NodeID, b *netbuf.Buffer, done DoneFunc) {
	c.q.push(outItem{to: to, buf: b, done: done})
	if !c.sending {
		c.startNext()
	}
}

func (c *CSMA) startNext() {
	if c.q.len() == 0 || c.stopped {
		c.sending = false
		return
	}
	c.sending = true
	c.attempt = 0
	c.seq++
	// Frame once into headroom; retransmissions reuse the same buffer.
	frame(c.q.front().buf, KindData, c.seq)
	// 802.15.4 performs a random backoff before the first CCA; without
	// it, event-triggered transmissions from several nodes (e.g. all
	// neighbors answering one broadcast) align on the same instant and
	// collide deterministically.
	c.initialBackoff()
}

func (c *CSMA) initialBackoff() {
	slots := c.k.Rand().Int63n(8) + 1
	c.k.Schedule(time.Duration(slots)*c.cfg.BackoffSlot, c.firstTryFn)
}

// tryTransmit performs carrier sense with exponential backoff, then puts
// the frame on the air.
func (c *CSMA) tryTransmit(backoffExp int) {
	if c.stopped || c.q.len() == 0 {
		return
	}
	if c.m.CarrierSense(c.id) {
		exp := backoffExp + 1
		if exp > c.cfg.MaxBackoffExp {
			exp = c.cfg.MaxBackoffExp
		}
		slots := c.k.Rand().Int63n(1 << uint(exp))
		c.m.Recorder().Emit(int32(c.id), trace.MACBackoff, slots+1, int64(exp), 0, c.q.front().buf.Journey())
		c.k.Schedule(time.Duration(slots+1)*c.cfg.BackoffSlot, func() {
			c.tryTransmit(exp)
		})
		return
	}
	it := c.q.front()
	c.m.Recorder().Emit(int32(c.id), trace.MACTx, int64(it.to), int64(c.attempt), 0, it.buf.Journey())
	air := c.m.Send(radio.Frame{
		From: c.id, To: it.to, Channel: c.cfg.Channel, Tenant: c.cfg.Tenant,
		Size: it.buf.Len(), Payload: it.buf,
	})
	if it.to == radio.Broadcast {
		// No ACK for broadcast: complete after airtime.
		c.k.Schedule(air, c.bcastDoneFn)
		return
	}
	c.awaitAckSeq = c.seq
	c.awaitAckTo = it.to
	c.ackTimer = c.k.Schedule(air+c.cfg.AckTimeout, c.ackTimeoutFn)
}

func (c *CSMA) onAckTimeout() {
	var jid uint64
	if c.q.len() > 0 {
		jid = c.q.front().buf.Journey()
	}
	c.attempt++
	if c.attempt > c.cfg.MaxRetries {
		c.m.Registry().CounterWith("mac.tx_failed", metrics.L("mac", "csma")).Inc()
		c.m.Recorder().Emit(int32(c.id), trace.MACTxFail, int64(c.awaitAckTo), int64(c.attempt), 0, jid)
		c.finish(false)
		return
	}
	c.m.Registry().CounterWith("mac.retries", metrics.L("mac", "csma")).Inc()
	c.m.Recorder().Emit(int32(c.id), trace.MACRetry, int64(c.awaitAckTo), int64(c.attempt), 0, jid)
	c.initialBackoff()
}

func (c *CSMA) finish(ok bool) {
	if c.q.len() == 0 {
		return
	}
	it := c.q.pop()
	it.buf.Release()
	if it.done != nil {
		it.done(ok)
	}
	c.startNext()
}

// RadioReceive implements radio.Receiver.
func (c *CSMA) RadioReceive(f radio.Frame) {
	if !c.started || f.Payload == nil {
		return
	}
	kind, seq, payload, err := decode(f.Payload.Bytes())
	if err != nil {
		return
	}
	switch kind {
	case KindData:
		if f.To != c.id && f.To != radio.Broadcast {
			return // overheard unicast for someone else
		}
		if f.To == c.id {
			// ACK even duplicates: the sender may have missed our ACK.
			ack := control(c.m.Buffers(), KindAck, seq)
			c.m.Send(radio.Frame{
				From: c.id, To: f.From, Channel: c.cfg.Channel,
				Tenant: c.cfg.Tenant, Size: ack.Len(), Payload: ack,
			})
			ack.Release()
		}
		if c.dedup.fresh(f.From, seq) && c.handler != nil {
			// Upper layers run in the context of this packet's journey;
			// anything they send synchronously continues it.
			js := c.m.Buffers().Journeys()
			prev := js.SetCurrent(f.Payload.Journey())
			c.handler(f.From, payload)
			js.SetCurrent(prev)
		}
	case KindAck:
		if f.To == c.id && c.sending && seq == c.awaitAckSeq && f.From == c.awaitAckTo {
			c.ackTimer.Cancel()
			c.finish(true)
		}
	}
}
