package mac

import (
	"time"

	"iiotds/internal/metrics"
	"iiotds/internal/netbuf"
	"iiotds/internal/radio"
	"iiotds/internal/sim"
	"iiotds/internal/trace"
)

// RIMACConfig configures the receiver-initiated MAC.
type RIMACConfig struct {
	Config
	// BeaconInterval is the receiver wake-and-beacon period
	// (default 500 ms). Latency per hop is ~BeaconInterval/2, as with
	// LPL, but the rendezvous cost moves from sender strobing to
	// receiver beacons.
	BeaconInterval time.Duration
	// Dwell is how long the receiver stays awake after its beacon
	// waiting for data (default 5 ms).
	Dwell time.Duration
	// IdleTimeout extends the wake while traffic flows (default 20 ms).
	IdleTimeout time.Duration
}

func (c *RIMACConfig) applyDefaults() {
	c.Config.applyDefaults()
	if c.BeaconInterval == 0 {
		c.BeaconInterval = 500 * time.Millisecond
	}
	if c.Dwell == 0 {
		c.Dwell = 5 * time.Millisecond
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 20 * time.Millisecond
	}
}

// RIMAC is a receiver-initiated duty-cycled MAC in the style of RI-MAC
// (paper ref [27]): receivers periodically wake and advertise themselves
// with a short beacon; a sender with pending data wakes, listens for the
// target's beacon, and transmits immediately after it. Compared to LPL,
// the medium is occupied only by short beacons instead of long strobe
// trains, which behaves much better under contention.
type RIMAC struct {
	m   *radio.Medium
	k   *sim.Kernel
	id  radio.NodeID
	cfg RIMACConfig

	handler Handler
	q       sendq
	sending bool
	seq     uint16
	dedup   *dedup

	started   bool
	stopped   bool
	beacons   *sim.Repeater
	sleepEv   sim.Event
	awake     bool
	lastAwake sim.Time

	// Sender rendezvous state.
	waiting     bool
	waitTarget  radio.NodeID
	waitExpire  sim.Event
	attempt     int
	awaitAckSeq uint16
	gotAck      bool
	bcastUntil  sim.Time
}

var _ MAC = (*RIMAC)(nil)

// NewRIMAC creates a receiver-initiated MAC for node id on medium m.
func NewRIMAC(m *radio.Medium, id radio.NodeID, cfg RIMACConfig) *RIMAC {
	cfg.applyDefaults()
	return &RIMAC{m: m, k: m.Kernel(), id: id, cfg: cfg, dedup: newDedup()}
}

// Name implements MAC.
func (r *RIMAC) Name() string { return "rimac" }

// OnReceive implements MAC.
func (r *RIMAC) OnReceive(h Handler) { r.handler = h }

// QueueLen implements MAC.
func (r *RIMAC) QueueLen() int { return r.q.len() }

// Buffers implements MAC.
func (r *RIMAC) Buffers() *netbuf.Pool { return r.m.Buffers() }

// Retune implements MAC.
func (r *RIMAC) Retune(ch uint8) {
	r.cfg.Channel = ch
	if r.started {
		r.m.SetChannel(r.id, ch)
	}
}

// Reboot implements MAC.
func (r *RIMAC) Reboot() {
	r.seq = 0
	r.dedup.reset()
}

// ForgetNeighbor implements MAC.
func (r *RIMAC) ForgetNeighbor(id radio.NodeID) { r.dedup.forget(id) }

// Start begins the beacon schedule.
func (r *RIMAC) Start() {
	if r.started {
		return
	}
	r.started = true
	r.stopped = false
	r.m.SetChannel(r.id, r.cfg.Channel)
	r.m.SetListening(r.id, false)
	r.beacons = r.k.Every(r.cfg.BeaconInterval, r.cfg.BeaconInterval/8, r.beacon)
}

// Stop halts the MAC and fails queued sends.
func (r *RIMAC) Stop() {
	if !r.started {
		return
	}
	r.started = false
	r.stopped = true
	if r.beacons != nil {
		r.beacons.Stop()
	}
	r.sleepEv.Cancel()
	r.waitExpire.Cancel()
	r.setAwake(false)
	r.q.drain()
	r.sending = false
	r.waiting = false
}

func (r *RIMAC) setAwake(on bool) {
	if on == r.awake {
		return
	}
	if on {
		r.lastAwake = r.k.Now()
	} else {
		r.m.Energy().Ledger(int(r.id)).Spend(metrics.StateListen, r.k.Now()-r.lastAwake)
	}
	r.awake = on
	r.m.SetListening(r.id, on)
}

// beacon is the receiver-side wake-up: advertise, then listen briefly.
func (r *RIMAC) beacon() {
	if r.stopped || r.waiting {
		return // a waiting sender is already listening continuously
	}
	r.setAwake(true)
	bcn := control(r.m.Buffers(), KindBeacon, 0)
	r.m.Send(radio.Frame{
		From: r.id, To: radio.Broadcast, Channel: r.cfg.Channel,
		Tenant: r.cfg.Tenant, Size: bcn.Len(), Payload: bcn,
	})
	bcn.Release()
	r.m.Registry().CounterWith("mac.beacons", metrics.L("mac", "rimac")).Inc()
	r.m.Recorder().Emit(int32(r.id), trace.MACBeacon, 0, 0, 0, 0)
	r.scheduleSleep(r.cfg.Dwell)
}

func (r *RIMAC) scheduleSleep(d time.Duration) {
	r.sleepEv.Cancel()
	r.sleepEv = r.k.Schedule(d, func() {
		if r.stopped || r.waiting {
			return
		}
		if r.m.CarrierSense(r.id) {
			r.scheduleSleep(r.cfg.IdleTimeout)
			return
		}
		r.setAwake(false)
	})
}

// Send implements MAC.
func (r *RIMAC) Send(to radio.NodeID, payload []byte, done DoneFunc) {
	if !r.started {
		if done != nil {
			done(false)
		}
		return
	}
	r.enqueue(to, copyIn(r.m.Buffers(), payload), done)
}

// SendBuf implements MAC.
func (r *RIMAC) SendBuf(to radio.NodeID, b *netbuf.Buffer, done DoneFunc) {
	if !r.started {
		b.Release()
		if done != nil {
			done(false)
		}
		return
	}
	r.enqueue(to, b, done)
}

func (r *RIMAC) enqueue(to radio.NodeID, b *netbuf.Buffer, done DoneFunc) {
	r.q.push(outItem{to: to, buf: b, done: done})
	if !r.sending {
		r.startNext()
	}
}

func (r *RIMAC) startNext() {
	if r.q.len() == 0 || r.stopped {
		r.sending = false
		return
	}
	r.sending = true
	r.attempt = 0
	r.seq++
	r.gotAck = false
	it := r.q.front()
	// Frame once into headroom; every beacon-triggered copy (and every
	// retry window) reuses the buffer.
	frame(it.buf, KindData, r.seq)
	// Rendezvous: stay awake until the target's next beacon (or, for
	// broadcast, for one full beacon interval answering every beacon).
	r.waiting = true
	r.waitTarget = it.to
	r.setAwake(true)
	window := r.cfg.BeaconInterval + r.cfg.BeaconInterval/4
	if it.to == radio.Broadcast {
		r.bcastUntil = r.k.Now() + window
	}
	r.waitExpire = r.k.Schedule(window, func() { r.waitExpired() })
}

func (r *RIMAC) waitExpired() {
	if r.stopped || !r.waiting {
		return
	}
	it := r.q.front()
	if it.to == radio.Broadcast {
		// Broadcast window over: counted as delivered to whoever woke.
		r.finish(true)
		return
	}
	r.attempt++
	if r.attempt > r.cfg.MaxRetries {
		r.m.Registry().CounterWith("mac.tx_failed", metrics.L("mac", "rimac")).Inc()
		r.m.Recorder().Emit(int32(r.id), trace.MACTxFail, int64(it.to), int64(r.attempt), 0, it.buf.Journey())
		r.finish(false)
		return
	}
	r.m.Recorder().Emit(int32(r.id), trace.MACRetry, int64(it.to), int64(r.attempt), 0, it.buf.Journey())
	// Keep waiting through another beacon period.
	r.waitExpire = r.k.Schedule(r.cfg.BeaconInterval, func() { r.waitExpired() })
}

func (r *RIMAC) finish(ok bool) {
	r.waiting = false
	r.waitExpire.Cancel()
	r.scheduleSleep(r.cfg.Dwell)
	if r.q.len() == 0 {
		r.sending = false
		return
	}
	it := r.q.pop()
	it.buf.Release()
	if it.done != nil {
		it.done(ok)
	}
	r.startNext()
}

// RadioReceive implements radio.Receiver.
func (r *RIMAC) RadioReceive(f radio.Frame) {
	if !r.started || f.Payload == nil {
		return
	}
	kind, seq, payload, err := decode(f.Payload.Bytes())
	if err != nil {
		return
	}
	switch kind {
	case KindBeacon:
		if !r.waiting {
			return
		}
		it := r.q.front()
		if it.to == radio.Broadcast {
			if r.k.Now() < r.bcastUntil {
				// The queued buffer was framed in startNext; every beacon
				// answered within the window reuses it.
				r.m.Send(radio.Frame{
					From: r.id, To: radio.Broadcast, Channel: r.cfg.Channel,
					Tenant: r.cfg.Tenant, Size: it.buf.Len(), Payload: it.buf,
				})
			}
			return
		}
		if f.From != it.to {
			return // someone else's beacon
		}
		// The target is awake: contend for it. Several senders may be
		// waiting on the same beacon, so back off a random slice of the
		// dwell window and carrier-sense before transmitting (RI-MAC's
		// collision-avoidance window). Losing the race just means
		// waiting for the next beacon.
		seq := r.seq
		to, buf := it.to, it.buf
		backoff := time.Duration(r.k.Rand().Int63n(int64(r.cfg.Dwell * 4 / 5)))
		r.k.Schedule(backoff, func() {
			// The r.seq and r.waiting guards ensure buf is still the
			// queued (framed, unreleased) head item when we transmit.
			if r.stopped || !r.waiting || r.seq != seq || r.gotAck {
				return
			}
			if r.m.CarrierSense(r.id) {
				return // another sender won this rendezvous
			}
			r.awaitAckSeq = seq
			r.m.Send(radio.Frame{
				From: r.id, To: to, Channel: r.cfg.Channel,
				Tenant: r.cfg.Tenant, Size: buf.Len(), Payload: buf,
			})
		})
	case KindData:
		if f.To != r.id && f.To != radio.Broadcast {
			return
		}
		if f.To == r.id {
			ack := control(r.m.Buffers(), KindAck, seq)
			r.m.Send(radio.Frame{
				From: r.id, To: f.From, Channel: r.cfg.Channel,
				Tenant: r.cfg.Tenant, Size: ack.Len(), Payload: ack,
			})
			ack.Release()
		}
		if r.dedup.fresh(f.From, seq) && r.handler != nil {
			// Upper layers run in the context of this packet's journey;
			// anything they send synchronously continues it.
			js := r.m.Buffers().Journeys()
			prev := js.SetCurrent(f.Payload.Journey())
			r.handler(f.From, payload)
			js.SetCurrent(prev)
		}
		if !r.waiting {
			r.setAwake(true)
			r.scheduleSleep(r.cfg.IdleTimeout)
		}
	case KindAck:
		if f.To == r.id && r.waiting && seq == r.awaitAckSeq {
			r.gotAck = true
			r.finish(true)
		}
	}
}
