package mac

import (
	"testing"
	"time"

	"iiotds/internal/metrics"
	"iiotds/internal/radio"
	"iiotds/internal/sim"
)

func riPair(seed int64, interval time.Duration) (*sim.Kernel, *radio.Medium, *RIMAC, *RIMAC) {
	k := sim.New(seed)
	m := radio.NewMedium(k, radio.DefaultParams(), nil)
	var a, b *RIMAC
	m.Attach(1, radio.Position{X: 0}, radio.ReceiverFunc(func(f radio.Frame) { a.RadioReceive(f) }))
	m.Attach(2, radio.Position{X: 10}, radio.ReceiverFunc(func(f radio.Frame) { b.RadioReceive(f) }))
	a = NewRIMAC(m, 1, RIMACConfig{BeaconInterval: interval})
	b = NewRIMAC(m, 2, RIMACConfig{BeaconInterval: interval})
	a.Start()
	b.Start()
	return k, m, a, b
}

func TestRIMACUnicastViaBeaconRendezvous(t *testing.T) {
	k, _, a, b := riPair(5, 500*time.Millisecond)
	var got []byte
	b.OnReceive(func(_ radio.NodeID, p []byte) { got = p })
	delivered := false
	var sentAt, gotAt sim.Time
	k.Schedule(2*time.Second, func() {
		sentAt = k.Now()
		a.Send(2, []byte("reading"), func(ok bool) {
			delivered = ok
			gotAt = k.Now()
		})
	})
	k.RunFor(10 * time.Second)
	if !delivered || string(got) != "reading" {
		t.Fatalf("delivered=%v got=%q", delivered, got)
	}
	// Rendezvous latency is bounded by roughly one beacon interval.
	if lat := gotAt - sentAt; lat > 700*time.Millisecond {
		t.Fatalf("latency %v exceeds ~one beacon interval", lat)
	}
}

func TestRIMACFailsWhenTargetSilent(t *testing.T) {
	k, m, a, b := riPair(6, 300*time.Millisecond)
	b.Stop() // no more beacons from 2
	_ = m
	result := true
	a.Send(2, []byte("x"), func(ok bool) { result = ok })
	k.RunFor(30 * time.Second)
	if result {
		t.Fatal("send to silent receiver reported success")
	}
}

func TestRIMACLowIdleDutyCycle(t *testing.T) {
	k, m, _, _ := riPair(7, 500*time.Millisecond)
	k.RunFor(2 * time.Minute)
	on := m.Energy().Ledger(2).RadioOn()
	frac := float64(on) / float64(k.Now())
	if frac > 0.05 {
		t.Fatalf("idle RI-MAC radio-on fraction = %v, want ≈Dwell/Interval", frac)
	}
}

func TestRIMACBeaconsCostReceiverNotSender(t *testing.T) {
	k, m, _, _ := riPair(8, 250*time.Millisecond)
	k.RunFor(time.Minute)
	if m.Registry().CounterWith("mac.beacons", metrics.L("mac", "rimac")).Value() < 100 {
		t.Fatal("receivers are not beaconing")
	}
}

func TestRIMACBroadcastReachesAwakeNeighbors(t *testing.T) {
	k := sim.New(9)
	m := radio.NewMedium(k, radio.DefaultParams(), nil)
	macs := make([]*RIMAC, 3)
	for i := range macs {
		idx := i
		m.Attach(radio.NodeID(i+1), radio.Position{X: float64(i) * 5}, radio.ReceiverFunc(func(f radio.Frame) {
			macs[idx].RadioReceive(f)
		}))
		macs[i] = NewRIMAC(m, radio.NodeID(i+1), RIMACConfig{BeaconInterval: 200 * time.Millisecond})
		macs[i].Start()
	}
	got := map[int]bool{}
	macs[1].OnReceive(func(radio.NodeID, []byte) { got[1] = true })
	macs[2].OnReceive(func(radio.NodeID, []byte) { got[2] = true })
	ok := false
	k.Schedule(time.Second, func() {
		macs[0].Send(radio.Broadcast, []byte("evt"), func(b bool) { ok = b })
	})
	k.RunFor(5 * time.Second)
	if !ok || !got[1] || !got[2] {
		t.Fatalf("broadcast ok=%v reached=%v", ok, got)
	}
}

func TestRIMACChainForwarding(t *testing.T) {
	const n = 4
	k := sim.New(10)
	m := radio.NewMedium(k, radio.DefaultParams(), nil)
	macs := make([]*RIMAC, n)
	for i := 0; i < n; i++ {
		idx := i
		m.Attach(radio.NodeID(i), radio.Position{X: float64(i) * 18}, radio.ReceiverFunc(func(f radio.Frame) {
			macs[idx].RadioReceive(f)
		}))
		macs[i] = NewRIMAC(m, radio.NodeID(i), RIMACConfig{BeaconInterval: 250 * time.Millisecond})
		macs[i].Start()
	}
	for i := 1; i < n; i++ {
		i := i
		macs[i].OnReceive(func(_ radio.NodeID, p []byte) {
			macs[i].Send(radio.NodeID(i-1), p, nil)
		})
	}
	got := 0
	macs[0].OnReceive(func(radio.NodeID, []byte) { got++ })
	for p := 0; p < 5; p++ {
		p := p
		k.Schedule(time.Duration(p)*5*time.Second, func() {
			macs[n-1].Send(radio.NodeID(n-2), []byte{byte(p)}, nil)
		})
	}
	k.RunFor(60 * time.Second)
	if got < 4 {
		t.Fatalf("delivered %d/5 over the RI-MAC chain", got)
	}
}

func TestRIMACSendAfterStopFails(t *testing.T) {
	_, _, a, _ := riPair(11, 500*time.Millisecond)
	a.Stop()
	called, result := false, true
	a.Send(2, []byte("x"), func(ok bool) { called, result = true, ok })
	if !called || result {
		t.Fatal("send after stop must fail immediately")
	}
}

func TestRIMACName(t *testing.T) {
	_, _, a, _ := riPair(12, 500*time.Millisecond)
	if a.Name() != "rimac" {
		t.Fatalf("Name() = %q", a.Name())
	}
}
