// Package rpl implements an RPL-style routing layer (paper ref [14]) for
// the emulated mesh: DODAG formation with trickle-timed DIO beacons,
// ETX-based parent selection (MRHOF-like), storing-mode downward routes
// via DAOs, poisoning and local repair, partition awareness (paper ref
// [44]), and RNFD-style collaborative detection of border-router failure
// (paper ref [32]).
package rpl

import (
	"time"

	"iiotds/internal/sim"
)

// TrickleConfig parameterizes the RFC 6206 trickle timer that paces DIO
// transmissions: exponentially backing off while the network is
// consistent, resetting to Imin when an inconsistency is detected. This
// is the mechanism that makes §V-D's "self-organized but cheap"
// maintenance possible: control overhead decays to almost nothing in
// steady state yet reacts in O(Imin) to change.
type TrickleConfig struct {
	// Imin is the minimum interval (default 500 ms).
	Imin time.Duration
	// Doublings is how many times the interval may double (default 6,
	// i.e. Imax = 32 s with the default Imin).
	Doublings int
	// K is the redundancy constant: transmission is suppressed when K
	// or more consistent messages were heard in the interval (default 3).
	K int
}

func (c *TrickleConfig) applyDefaults() {
	if c.Imin == 0 {
		c.Imin = 500 * time.Millisecond
	}
	if c.Doublings == 0 {
		c.Doublings = 6
	}
	if c.K == 0 {
		c.K = 3
	}
}

// Trickle is one RFC 6206 timer instance.
type Trickle struct {
	k        *sim.Kernel
	cfg      TrickleConfig
	transmit func()

	interval time.Duration
	counter  int
	fireEv   sim.Event
	endEv    sim.Event
	running  bool

	// Resets counts timer resets; Suppressed counts suppressed
	// transmissions (for E10's overhead accounting).
	Resets     int
	Suppressed int
	Sent       int
}

// NewTrickle creates a stopped trickle timer that calls transmit when it
// decides to send.
func NewTrickle(k *sim.Kernel, cfg TrickleConfig, transmit func()) *Trickle {
	cfg.applyDefaults()
	return &Trickle{k: k, cfg: cfg, transmit: transmit}
}

// Start begins the timer at Imin.
func (t *Trickle) Start() {
	if t.running {
		return
	}
	t.running = true
	t.interval = t.cfg.Imin
	t.beginInterval()
}

// Stop halts the timer.
func (t *Trickle) Stop() {
	t.running = false
	t.fireEv.Cancel()
	t.endEv.Cancel()
}

// Hear records a consistent message heard from a neighbor; enough of them
// suppress our own transmission.
func (t *Trickle) Hear() { t.counter++ }

// Reset signals an inconsistency: the interval drops to Imin so the news
// propagates quickly.
func (t *Trickle) Reset() {
	if !t.running {
		return
	}
	t.Resets++
	if t.interval == t.cfg.Imin {
		return // already at minimum; RFC 6206 §4.2 resets only larger intervals
	}
	t.interval = t.cfg.Imin
	t.fireEv.Cancel()
	t.endEv.Cancel()
	t.beginInterval()
}

// Interval returns the current interval length.
func (t *Trickle) Interval() time.Duration { return t.interval }

func (t *Trickle) beginInterval() {
	t.counter = 0
	// Fire at a uniformly random point in the second half of the interval.
	half := t.interval / 2
	at := half + time.Duration(t.k.Rand().Int63n(int64(half)))
	t.fireEv = t.k.Schedule(at, func() {
		if !t.running {
			return
		}
		if t.counter < t.cfg.K {
			t.Sent++
			t.transmit()
		} else {
			t.Suppressed++
		}
	})
	t.endEv = t.k.Schedule(t.interval, func() {
		if !t.running {
			return
		}
		max := t.cfg.Imin << uint(t.cfg.Doublings)
		t.interval *= 2
		if t.interval > max {
			t.interval = max
		}
		t.beginInterval()
	})
}
