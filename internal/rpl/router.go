package rpl

import (
	"errors"
	"fmt"
	"time"

	"iiotds/internal/link"
	"iiotds/internal/lowpan"
	"iiotds/internal/metrics"
	"iiotds/internal/netbuf"
	"iiotds/internal/radio"
	"iiotds/internal/sim"
	"iiotds/internal/trace"
)

// NoParent is the parent value of a detached node.
const NoParent radio.NodeID = -1

// ErrNoRoute is returned when a datagram cannot be forwarded.
var ErrNoRoute = errors.New("rpl: no route to destination")

// DeliverFunc receives datagrams addressed to this node.
type DeliverFunc func(src radio.NodeID, payload []byte)

// Config parameterizes a Router.
type Config struct {
	// Trickle paces DIO beacons.
	Trickle TrickleConfig
	// MinHopRankIncrease is the rank step per ideal hop (default 256,
	// as in RPL).
	MinHopRankIncrease uint16
	// ParentHysteresis is how much better (in rank units) a candidate
	// must be to displace the preferred parent (default 192).
	ParentHysteresis uint16
	// DAOInterval is the downward-route refresh period (default 15 s).
	DAOInterval time.Duration
	// ParentProbeInterval is the parent liveness probe period
	// (default 10 s).
	ParentProbeInterval time.Duration
	// ParentFailThreshold is the number of consecutive failed
	// transmissions to the parent before it is abandoned (default 3).
	ParentFailThreshold int
	// MaxRankIncrease bounds how far the node's rank may drift above
	// the lowest rank it held since joining (RPL's DAGMaxRankIncrease,
	// default 3×MinHopRankIncrease). Exceeding it forces detach-and-
	// rejoin, which is what breaks count-to-infinity cycles fed by
	// stale neighbor state.
	MaxRankIncrease uint16
	// HopLimit is the initial datagram hop limit (default 32).
	HopLimit uint8
	// RouteLifetime is how long a downward route survives without
	// refresh (default 3×DAOInterval).
	RouteLifetime time.Duration
	// NeighborStale is how long a candidate parent survives without a
	// DIO (default 90 s).
	NeighborStale time.Duration
	// Lowpan configures the adaptation layer.
	Lowpan lowpan.Config
}

func (c *Config) applyDefaults() {
	c.Trickle.applyDefaults()
	if c.MinHopRankIncrease == 0 {
		c.MinHopRankIncrease = 256
	}
	if c.ParentHysteresis == 0 {
		c.ParentHysteresis = 192
	}
	if c.DAOInterval == 0 {
		c.DAOInterval = 15 * time.Second
	}
	if c.ParentProbeInterval == 0 {
		c.ParentProbeInterval = 10 * time.Second
	}
	if c.ParentFailThreshold == 0 {
		c.ParentFailThreshold = 3
	}
	if c.MaxRankIncrease == 0 {
		c.MaxRankIncrease = 3 * c.MinHopRankIncrease
	}
	if c.HopLimit == 0 {
		c.HopLimit = 32
	}
	if c.RouteLifetime == 0 {
		c.RouteLifetime = 3 * c.DAOInterval
	}
	if c.NeighborStale == 0 {
		c.NeighborStale = 90 * time.Second
	}
}

type candidate struct {
	rank      uint16
	version   uint8
	lastHeard sim.Time
}

type routeEntry struct {
	nextHop   radio.NodeID
	refreshed sim.Time
}

// Router is one node's RPL instance: it forms and maintains the DODAG,
// and routes lowpan datagrams upward (toward the border router) and
// downward (storing mode).
type Router struct {
	k     *sim.Kernel
	lnk   *link.Link
	adapt *lowpan.Adaptation
	cfg   Config
	reg   *metrics.Registry

	id      radio.NodeID
	isRoot  bool
	root    radio.NodeID
	version uint8
	rank    uint16
	parent  radio.NodeID

	candidates map[radio.NodeID]*candidate
	trickle    *Trickle
	downRoutes map[radio.NodeID]*routeEntry
	handlers   map[lowpan.Proto]DeliverFunc

	daoSeq      uint16
	netSeq      uint16
	parentFails int
	lowestRank  uint16

	daoTimer   *sim.Repeater
	probeTimer *sim.Repeater

	rnfd     *RNFD
	rootDead bool

	started  bool
	joinedAt sim.Time
	joined   bool

	fscratch []*netbuf.Buffer // reused frame slice for route()

	rec *trace.Recorder
}

// NewRouter creates a router for the node behind lnk. If isRoot is true
// the node acts as the DODAG root (the border router); root is the root's
// node ID (== lnk.ID() when isRoot).
func NewRouter(k *sim.Kernel, lnk *link.Link, isRoot bool, root radio.NodeID, cfg Config, reg *metrics.Registry) *Router {
	cfg.applyDefaults()
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	r := &Router{
		k:          k,
		lnk:        lnk,
		adapt:      lowpan.NewAdaptation(cfg.Lowpan),
		cfg:        cfg,
		reg:        reg,
		id:         lnk.ID(),
		isRoot:     isRoot,
		root:       root,
		rank:       InfiniteRank,
		parent:     NoParent,
		candidates: make(map[radio.NodeID]*candidate),
		downRoutes: make(map[radio.NodeID]*routeEntry),
		handlers:   make(map[lowpan.Proto]DeliverFunc),
	}
	if isRoot && root != r.id {
		panic(fmt.Sprintf("rpl: root router id %d != root %d", r.id, root))
	}
	// Datagrams fragment straight into the stack's pooled buffers and
	// ride down to the radio without another copy.
	r.adapt.UsePool(lnk.Buffers())
	tcfg := cfg.Trickle
	if isRoot {
		// The root's DIOs are the network's liveness signal (RNFD
		// sentinels watch for them), so the root never suppresses.
		tcfg.K = 1 << 30
	}
	r.trickle = NewTrickle(k, tcfg, r.sendDIO)
	// Handlers are registered once here (not in Start) so a crashed
	// node can be restarted without re-registering.
	lnk.Handle(link.ProtoRouting, r.onRouting)
	lnk.Handle(link.ProtoNet, r.onNet)
	return r
}

// ID returns this node's ID.
func (r *Router) ID() radio.NodeID { return r.id }

// Rank returns the node's current rank (InfiniteRank when detached).
func (r *Router) Rank() uint16 { return r.rank }

// Parent returns the preferred parent, or NoParent.
func (r *Router) Parent() radio.NodeID { return r.parent }

// Root returns the DODAG root's node ID.
func (r *Router) Root() radio.NodeID { return r.root }

// IsRoot reports whether this node is the DODAG root.
func (r *Router) IsRoot() bool { return r.isRoot }

// Version returns the DODAG version this node participates in.
func (r *Router) Version() uint8 { return r.version }

// Joined reports whether the node has ever joined the DODAG, and at what
// time it first did.
func (r *Router) Joined() (bool, sim.Time) { return r.joined, r.joinedAt }

// Partitioned reports whether the node currently has no path toward the
// root — the condition §V-C says the sensing layer must survive.
func (r *Router) Partitioned() bool { return !r.isRoot && r.parent == NoParent }

// RootDead reports whether this node has learned (via RNFD) that the
// root failed.
func (r *Router) RootDead() bool { return r.rootDead }

// Trickle exposes the DIO trickle timer (for overhead accounting).
func (r *Router) Trickle() *Trickle { return r.trickle }

// SetRecorder installs the flight recorder routing events are traced
// into. RNFD (if enabled) shares the router's recorder.
func (r *Router) SetRecorder(rec *trace.Recorder) { r.rec = rec }

// RouteCount returns the number of stored downward routes.
func (r *Router) RouteCount() int { return len(r.downRoutes) }

// Handle registers the delivery handler for proto.
func (r *Router) Handle(proto lowpan.Proto, h DeliverFunc) {
	if _, dup := r.handlers[proto]; dup {
		panic(fmt.Sprintf("rpl: handler for proto %d registered twice", proto))
	}
	r.handlers[proto] = h
}

// Start begins protocol timers. A router that was stopped (crashed) may
// be started again; use Restart to also clear volatile protocol state.
func (r *Router) Start() {
	if r.started {
		return
	}
	r.started = true
	if r.isRoot {
		if r.version == 0 {
			r.version = 1
		}
		r.rank = r.cfg.MinHopRankIncrease
		r.joined = true
		r.joinedAt = r.k.Now()
	} else {
		// Solicit DIOs so joining does not wait a full trickle interval.
		r.lnk.Broadcast(link.ProtoRouting, []byte{byte(msgDIS)})
		r.daoTimer = r.k.Every(r.cfg.DAOInterval, r.cfg.DAOInterval/4, r.sendDAO)
		r.probeTimer = r.k.Every(r.cfg.ParentProbeInterval, r.cfg.ParentProbeInterval/4, r.probeParent)
	}
	r.trickle.Start()
}

// Stop halts all timers (e.g., when the node crashes).
func (r *Router) Stop() {
	if !r.started {
		return
	}
	r.started = false
	r.trickle.Stop()
	if r.daoTimer != nil {
		r.daoTimer.Stop()
	}
	if r.probeTimer != nil {
		r.probeTimer.Stop()
	}
}

// Restart models a crash-reboot: all volatile protocol state is lost and
// the protocol starts over. A rebooting root opens a new DODAG version so
// survivors of the old incarnation rejoin cleanly.
func (r *Router) Restart() {
	r.Stop()
	r.candidates = make(map[radio.NodeID]*candidate)
	r.downRoutes = make(map[radio.NodeID]*routeEntry)
	r.parent = NoParent
	r.rank = InfiniteRank
	r.parentFails = 0
	r.rootDead = false
	if r.isRoot {
		r.version++
	}
	r.Start()
}

// GlobalRepair (root only) bumps the DODAG version, forcing the whole
// network to rebuild — RPL's heavyweight repair.
func (r *Router) GlobalRepair() {
	if !r.isRoot {
		panic("rpl: GlobalRepair on non-root")
	}
	r.version++
	r.trickle.Reset()
}

// --- control plane ---

func (r *Router) sendDIO() {
	if !r.isRoot && r.rank == InfiniteRank && r.parent == NoParent && len(r.candidates) == 0 {
		// Nothing useful to say and nothing to poison.
		return
	}
	d := dio{Version: r.version, Rank: r.rank, Root: r.root}
	r.reg.Counter("rpl.dio_sent").Inc()
	r.rec.Emit(int32(r.id), trace.RPLDIOSent, int64(radio.Broadcast), int64(r.rank), 0, 0)
	r.lnk.Broadcast(link.ProtoRouting, d.encode())
}

func (r *Router) sendDIOTo(to radio.NodeID) {
	d := dio{Version: r.version, Rank: r.rank, Root: r.root}
	r.reg.Counter("rpl.dio_sent").Inc()
	r.rec.Emit(int32(r.id), trace.RPLDIOSent, int64(to), int64(r.rank), 0, 0)
	r.lnk.Send(to, link.ProtoRouting, d.encode(), nil)
}

func (r *Router) sendDAO() {
	if r.parent == NoParent {
		return
	}
	r.daoSeq++
	d := dao{Target: r.id, Seq: r.daoSeq}
	r.reg.Counter("rpl.dao_sent").Inc()
	r.rec.Emit(int32(r.id), trace.RPLDAOSent, int64(r.parent), int64(r.daoSeq), 0, 0)
	parent := r.parent
	r.lnk.Send(parent, link.ProtoRouting, d.encode(), func(ok bool) {
		r.noteParentTx(parent, ok)
	})
	r.sweepRoutes()
}

func (r *Router) probeParent() {
	if r.parent == NoParent {
		// Detached: keep soliciting.
		r.lnk.Broadcast(link.ProtoRouting, []byte{byte(msgDIS)})
		r.reg.Counter("rpl.dis_sent").Inc()
		return
	}
	parent := r.parent
	r.lnk.Send(parent, link.ProtoRouting, []byte{byte(msgDIS)}, func(ok bool) {
		r.noteParentTx(parent, ok)
	})
	r.reg.Counter("rpl.probe_sent").Inc()
}

// noteParentTx folds a transmission outcome toward the (then-)parent into
// failure detection. A single failure already worsened the link's ETX, so
// reselection runs immediately; only persistent failure evicts the
// candidate entirely.
func (r *Router) noteParentTx(parent radio.NodeID, ok bool) {
	if parent != r.parent {
		return // parent changed while in flight
	}
	if ok {
		r.parentFails = 0
		if r.rnfd != nil && parent == r.root {
			// A link-layer ACK from the root is liveness evidence.
			r.rnfd.rootHeard()
		}
		return
	}
	r.parentFails++
	if r.parentFails >= r.cfg.ParentFailThreshold {
		r.reg.Counter("rpl.parent_lost").Inc()
		delete(r.candidates, parent)
		r.parentFails = 0
	}
	r.recomputeParent()
}

func (r *Router) onRouting(from radio.NodeID, raw []byte) {
	if len(raw) < 1 {
		return
	}
	switch msgType(raw[0]) {
	case msgDIO:
		d, err := decodeDIO(raw)
		if err == nil {
			r.onDIO(from, d)
		}
	case msgDAO:
		d, err := decodeDAO(raw)
		if err == nil {
			r.onDAO(from, d)
		}
	case msgDIS:
		// Answer solicitations with a unicast DIO after a short random
		// delay: every in-range node heard the same DIS, and answering
		// in unison just trades a solicitation for a collision storm.
		if r.rank != InfiniteRank {
			delay := time.Duration(r.k.Rand().Int63n(int64(300 * time.Millisecond)))
			r.k.Schedule(delay, func() {
				if r.started && r.rank != InfiniteRank {
					r.sendDIOTo(from)
				}
			})
		}
	case msgSuspect, msgVerdict:
		if r.rnfd != nil {
			r.rnfd.onMessage(from, raw)
		}
	}
}

func (r *Router) onDIO(from radio.NodeID, d dio) {
	if d.Root != r.root {
		return // different DODAG instance
	}
	if r.isRoot {
		return // the root ignores others' DIOs
	}
	if d.Version > r.version {
		// Global repair: restart participation under the new version.
		r.version = d.Version
		r.candidates = make(map[radio.NodeID]*candidate)
		r.setParent(NoParent, InfiniteRank)
		r.trickle.Reset()
	} else if d.Version < r.version {
		return // stale neighbor; our trickle DIO will update it
	}
	r.rec.Emit(int32(r.id), trace.RPLDIORecv, int64(from), int64(d.Rank), 0, 0)
	if r.rnfd != nil && from == r.root {
		r.rnfd.rootHeard()
	}
	if d.Rank == InfiniteRank {
		// Poison: the neighbor detached.
		if _, was := r.candidates[from]; was {
			delete(r.candidates, from)
			if from == r.parent {
				r.trickle.Reset()
			}
			r.recomputeParent()
		}
		return
	}
	r.candidates[from] = &candidate{rank: d.Rank, version: d.Version, lastHeard: r.k.Now()}
	wasDetached := r.parent == NoParent
	r.recomputeParent()
	if wasDetached && r.parent != NoParent {
		r.trickle.Reset() // news: we joined; tell potential children fast
	} else {
		r.trickle.Hear()
	}
}

func (r *Router) onDAO(from radio.NodeID, d dao) {
	if r.parent == NoParent && !r.isRoot {
		return // cannot forward; drop
	}
	r.downRoutes[d.Target] = &routeEntry{nextHop: from, refreshed: r.k.Now()}
	if !r.isRoot {
		parent := r.parent
		r.lnk.Send(parent, link.ProtoRouting, d.encode(), func(ok bool) {
			r.noteParentTx(parent, ok)
		})
		r.reg.Counter("rpl.dao_fwd").Inc()
	}
}

// rankStep converts a link ETX into a rank increment.
func (r *Router) rankStep(etx float64) uint16 {
	steps := int(etx + 0.5)
	if steps < 1 {
		steps = 1
	}
	if steps > 8 {
		steps = 8
	}
	return uint16(steps) * r.cfg.MinHopRankIncrease
}

// recomputeParent runs MRHOF-style parent selection over fresh candidates.
func (r *Router) recomputeParent() {
	now := r.k.Now()
	for id, c := range r.candidates {
		if now-c.lastHeard > r.cfg.NeighborStale {
			delete(r.candidates, id)
		}
	}
	bestID := NoParent
	bestRank := InfiniteRank
	attached := r.rank != InfiniteRank
	for id, c := range r.candidates {
		// Loop avoidance (RPL's rank rule): while attached, only
		// neighbors with strictly lower rank are eligible as new
		// parents; picking an equal-or-deeper neighbor is how
		// count-to-infinity cycles form. The current parent stays
		// eligible so its advertised rank can float.
		if attached && id != r.parent && c.rank >= r.rank {
			continue
		}
		pr32 := uint32(c.rank) + uint32(r.rankStep(r.lnk.Neighbors().ETX(id)))
		if pr32 >= uint32(InfiniteRank) {
			continue
		}
		pr := uint16(pr32)
		if pr < bestRank || (pr == bestRank && (bestID == NoParent || id < bestID)) {
			bestID, bestRank = id, pr
		}
	}
	if bestID == NoParent {
		r.detach()
		return
	}
	// Hysteresis: only switch away from a live parent for a clear
	// improvement; otherwise keep the parent and float our rank with
	// its advertisements.
	if r.parent != NoParent && bestID != r.parent {
		cur, ok := r.candidates[r.parent]
		if ok {
			curRank32 := uint32(cur.rank) + uint32(r.rankStep(r.lnk.Neighbors().ETX(r.parent)))
			if uint32(bestRank)+uint32(r.cfg.ParentHysteresis) >= curRank32 && curRank32 < uint32(InfiniteRank) {
				bestID, bestRank = r.parent, uint16(curRank32)
			}
		}
	}
	r.adoptRank(bestID, bestRank)
}

// detach leaves the DODAG: infinite rank, poison DIO, fast re-advertising.
func (r *Router) detach() {
	if r.parent == NoParent && r.rank == InfiniteRank {
		return
	}
	r.rec.Emit(int32(r.id), trace.RPLDetach, 0, 0, 0, 0)
	r.setParent(NoParent, InfiniteRank)
	// Poison immediately so children stop routing through us.
	r.sendDIO()
	r.trickle.Reset()
}

// adoptRank applies the selected (parent, rank), enforcing the
// MaxRankIncrease damping rule.
func (r *Router) adoptRank(p radio.NodeID, rank uint16) {
	wasAttached := r.rank != InfiniteRank
	if wasAttached {
		if rank < r.lowestRank {
			r.lowestRank = rank
		}
		if uint32(rank) > uint32(r.lowestRank)+uint32(r.cfg.MaxRankIncrease) {
			// Rank ran away: the RPL cure is to detach, poison, and
			// rejoin from fresh advertisements.
			r.reg.Counter("rpl.rank_runaway_detach").Inc()
			r.detach()
			return
		}
	} else {
		r.lowestRank = rank
	}
	old := r.rank
	r.setParent(p, rank)
	// A significant rank worsening is an inconsistency children should
	// hear about quickly.
	if wasAttached && rank > old && rank-old > r.cfg.MinHopRankIncrease {
		r.trickle.Reset()
	}
}

func (r *Router) setParent(p radio.NodeID, rank uint16) {
	if p == r.parent && rank == r.rank {
		return
	}
	changed := p != r.parent
	old := r.parent
	r.parent = p
	r.rank = rank
	r.parentFails = 0
	if changed {
		r.reg.Counter("rpl.parent_switches").Inc()
		r.rec.Emit(int32(r.id), trace.RPLParentSwitch, int64(old), int64(p), 0, 0)
		if p != NoParent {
			if !r.joined {
				r.joined = true
				r.joinedAt = r.k.Now()
			}
			// Announce ourselves via DAO soon (jittered: parent
			// switches cluster during repair, and synchronized DAO
			// bursts would collide).
			delay := time.Duration(r.k.Rand().Int63n(int64(200 * time.Millisecond)))
			r.k.Schedule(delay, func() {
				if r.started && r.parent == p {
					r.sendDAO()
				}
			})
		}
	}
}

// --- data plane ---

// SendTo routes payload to dst under proto. Local destinations deliver
// immediately. The error reflects only local route availability; delivery
// is best-effort, as in any IP network.
//
// Journey assignment happens here: a datagram sent while an inbound
// packet is being processed (a CoAP response, a forwarded reading)
// continues that packet's journey; otherwise it starts a fresh one.
func (r *Router) SendTo(dst radio.NodeID, proto lowpan.Proto, payload []byte) error {
	r.netSeq++
	js := r.lnk.Buffers().Journeys()
	jid := js.Current()
	if jid == 0 {
		jid = js.New()
	}
	d := &lowpan.Datagram{
		Src: r.id, Dst: dst, Proto: proto,
		HopLimit: r.cfg.HopLimit, Seq: r.netSeq,
		Payload: payload, Journey: jid,
	}
	return r.route(d)
}

// SendUp routes payload to the DODAG root.
func (r *Router) SendUp(proto lowpan.Proto, payload []byte) error {
	return r.SendTo(r.root, proto, payload)
}

func (r *Router) route(d *lowpan.Datagram) error {
	if d.Dst == r.id {
		r.deliver(d)
		return nil
	}
	next := NoParent
	if e := r.lookupRoute(d.Dst); e != nil {
		next = e.nextHop
	} else if !r.isRoot && r.parent != NoParent {
		next = r.parent
	}
	if next == NoParent {
		r.reg.Counter("rpl.no_route_drops").Inc()
		r.rec.Emit(int32(r.id), trace.RPLNoRoute, int64(d.Src), int64(d.Dst), 0, d.Journey)
		return fmt.Errorf("%w: %d -> %d", ErrNoRoute, r.id, d.Dst)
	}
	frames, err := r.adapt.Encode(d, r.fscratch[:0])
	r.fscratch = frames[:0]
	if err != nil {
		return fmt.Errorf("rpl: encode datagram: %w", err)
	}
	for _, f := range frames {
		nh := next
		r.lnk.SendBuf(nh, link.ProtoNet, f, func(ok bool) {
			if nh == r.parent {
				r.noteParentTx(nh, ok)
			}
			if !ok {
				r.reg.Counter("rpl.link_drops").Inc()
			}
		})
	}
	r.reg.Counter("rpl.datagrams_forwarded").Inc()
	r.rec.Emit(int32(r.id), trace.RPLForward, int64(next), int64(d.Dst), 0, d.Journey)
	return nil
}

func (r *Router) lookupRoute(dst radio.NodeID) *routeEntry {
	e, ok := r.downRoutes[dst]
	if !ok {
		return nil
	}
	if r.k.Now()-e.refreshed > r.cfg.RouteLifetime {
		delete(r.downRoutes, dst)
		return nil
	}
	return e
}

func (r *Router) sweepRoutes() {
	now := r.k.Now()
	for dst, e := range r.downRoutes {
		if now-e.refreshed > r.cfg.RouteLifetime {
			delete(r.downRoutes, dst)
		}
	}
}

func (r *Router) onNet(from radio.NodeID, frame []byte) {
	d, err := r.adapt.Feed(r.k.Now(), from, frame)
	if err != nil {
		r.reg.Counter("rpl.malformed_frames").Inc()
		return
	}
	if d == nil {
		return // awaiting more fragments
	}
	// The MAC installed the inbound frame's journey as current before
	// invoking the receive chain; re-attach it to the reassembled
	// datagram (the ID is sideband metadata, never in the wire header).
	d.Journey = r.lnk.Buffers().Journeys().Current()
	if d.Dst == r.id {
		r.deliver(d)
		return
	}
	if d.HopLimit <= 1 {
		r.reg.Counter("rpl.hoplimit_drops").Inc()
		return
	}
	d.HopLimit--
	_ = r.route(d) // best-effort forwarding; drops counted inside
}

func (r *Router) deliver(d *lowpan.Datagram) {
	r.reg.Counter("rpl.delivered").Inc()
	r.rec.Emit(int32(r.id), trace.RPLDeliver, int64(d.Src), int64(d.Proto), 0, d.Journey)
	if h, ok := r.handlers[d.Proto]; ok {
		// The handler runs in this packet's journey context so that a
		// locally delivered datagram (SendTo to self never touches the
		// MAC) still propagates its journey into synchronous replies.
		js := r.lnk.Buffers().Journeys()
		prev := js.SetCurrent(d.Journey)
		h(d.Src, d.Payload)
		js.SetCurrent(prev)
	}
}
