package rpl

import (
	"time"

	"iiotds/internal/link"
	"iiotds/internal/radio"
	"iiotds/internal/sim"
	"iiotds/internal/trace"
)

// RNFDConfig parameterizes the collaborative root-failure detector
// modeled on RNFD (paper ref [32]). The idea that makes it cheap: only
// the root's radio neighbors (the "sentinels") monitor it — passively,
// through the DIOs the root sends anyway — and the rest of the network
// learns the outcome through one inexpensive flood. The alternative the
// paper contrasts it with, every node probing the root end-to-end,
// multiplies traffic through the already-loaded funnel region.
type RNFDConfig struct {
	// SuspectTimeout is how long a sentinel tolerates root silence
	// before suspecting failure (default 60 s; set it above the trickle
	// Imax so steady-state silence is not misread).
	SuspectTimeout time.Duration
	// Quorum is how many distinct suspecting sentinels it takes to
	// declare the root dead (default 2).
	Quorum int
	// CheckInterval is the sentinel's local evaluation period
	// (default 2 s).
	CheckInterval time.Duration
}

func (c *RNFDConfig) applyDefaults() {
	if c.SuspectTimeout == 0 {
		c.SuspectTimeout = 60 * time.Second
	}
	if c.Quorum == 0 {
		c.Quorum = 2
	}
	if c.CheckInterval == 0 {
		c.CheckInterval = 2 * time.Second
	}
}

// sentinelETXGate is the link quality required to qualify as a sentinel:
// a node that reaches the root only through a marginal link cannot tell
// silence from loss.
const sentinelETXGate = 2.0

// sentinelMinTx is the unicast history required before the ETX estimate
// is trusted for sentinel qualification.
const sentinelMinTx = 8

type rnfdSeen struct {
	sentinel radio.NodeID
	epoch    uint8
}

// RNFD is the per-node instance of the root-failure detector.
type RNFD struct {
	r   *Router
	cfg RNFDConfig

	epoch         uint8
	lastRootHeard sim.Time
	heardRootEver bool
	wasChild      bool
	localSuspect  bool
	suspects      map[radio.NodeID]sim.Time // sentinel -> when the suspicion was learned
	seen          map[rnfdSeen]bool
	dead          bool
	verdictAt     sim.Time

	checker *sim.Repeater

	// OnVerdict, if set, fires once when this node learns the root died.
	OnVerdict func()
}

// AttachRNFD installs and starts an RNFD instance on the router. Call
// after — or immediately around — Start; the detector begins evaluating
// on its CheckInterval.
func (r *Router) AttachRNFD(cfg RNFDConfig) *RNFD {
	cfg.applyDefaults()
	f := &RNFD{
		r:        r,
		cfg:      cfg,
		suspects: make(map[radio.NodeID]sim.Time),
		seen:     make(map[rnfdSeen]bool),
	}
	r.rnfd = f
	f.lastRootHeard = r.k.Now()
	f.checker = r.k.Every(cfg.CheckInterval, cfg.CheckInterval/4, f.check)
	return f
}

// Stop halts the detector.
func (f *RNFD) Stop() {
	if f.checker != nil {
		f.checker.Stop()
	}
}

// Dead reports whether this node considers the root failed, and when the
// verdict was reached.
func (f *RNFD) Dead() (bool, sim.Time) { return f.dead, f.verdictAt }

// SuspectCount returns the number of distinct suspecting sentinels known
// to this node in the current epoch.
func (f *RNFD) SuspectCount() int { return len(f.suspects) }

// rootHeard is called by the router whenever a DIO arrives directly from
// the root: the strongest possible evidence of liveness.
func (f *RNFD) rootHeard() {
	f.lastRootHeard = f.r.k.Now()
	f.heardRootEver = true
	f.localSuspect = false
	if len(f.suspects) > 0 {
		f.suspects = make(map[radio.NodeID]sim.Time)
	}
	if f.dead {
		// Root came back: open a new epoch so stale suspicions from the
		// previous incarnation cannot re-kill it.
		f.dead = false
		f.epoch++
	}
}

// check runs the sentinel-local failure evaluation.
func (f *RNFD) check() {
	if f.dead || f.r.isRoot {
		return
	}
	// Only the root's *good* unicast neighbors act as sentinels: nodes
	// whose preferred parent is the root over a solid link (ETX gate).
	// The status is sticky — during the death cascade former children
	// reparent through siblings whose state is equally doomed, and they
	// must keep monitoring through that churn. Gray-region nodes that
	// transiently latch onto the root never qualify, which keeps
	// chronic false suspicion out.
	if f.r.parent == f.r.root {
		// The link must be *proven* good: enough unicast history that
		// the estimate is past its optimistic prior. Gray-region nodes
		// that briefly latch onto the root fail this before their ETX
		// estimate catches up with reality.
		if e := f.r.lnk.Neighbors().Lookup(f.r.root); e != nil &&
			e.TxCount >= sentinelMinTx && e.ETX() < sentinelETXGate {
			if !f.wasChild {
				f.r.rec.Emit(int32(f.r.id), trace.RNFDSentinel, int64(e.TxCount), 0, e.ETX(), 0)
			}
			f.wasChild = true
		}
	}
	if !f.heardRootEver || !f.wasChild {
		return
	}
	if f.r.k.Now()-f.lastRootHeard < f.cfg.SuspectTimeout {
		return
	}
	if !f.localSuspect {
		f.localSuspect = true
		f.suspects[f.r.id] = f.r.k.Now()
		f.r.reg.Counter("rnfd.suspects_raised").Inc()
		f.r.rec.Emit(int32(f.r.id), trace.RNFDSuspect, int64(f.epoch), int64(f.r.k.Now()-f.lastRootHeard), 0, 0)
		f.flood(suspect{Sentinel: f.r.id, Epoch: f.epoch}.encode())
		f.evaluate()
	}
}

func (f *RNFD) onMessage(from radio.NodeID, raw []byte) {
	switch msgType(raw[0]) {
	case msgSuspect:
		s, err := decodeSuspect(raw)
		if err != nil || s.Epoch != f.epoch {
			return
		}
		key := rnfdSeen{sentinel: s.Sentinel, epoch: s.Epoch}
		if f.seen[key] {
			return
		}
		f.seen[key] = true
		f.suspects[s.Sentinel] = f.r.k.Now()
		f.r.rec.Emit(int32(f.r.id), trace.RNFDSuspectHeard, int64(s.Sentinel), int64(len(f.suspects)), 0, 0)
		// Re-flood once so the suspicion spreads beyond radio range.
		f.flood(raw)
		f.evaluate()
	case msgVerdict:
		v, err := decodeVerdict(raw)
		if err != nil || v.Root != f.r.root || v.Epoch != f.epoch {
			return
		}
		if !f.dead {
			f.declareDead()
			f.flood(raw)
		}
	}
	_ = from
}

func (f *RNFD) evaluate() {
	if f.dead {
		return
	}
	// Suspicions decay: a verdict needs a quorum of sentinels suspecting
	// within one window, not isolated doubts accumulated over hours.
	now := f.r.k.Now()
	fresh := 0
	for id, at := range f.suspects {
		if now-at > 2*f.cfg.SuspectTimeout {
			delete(f.suspects, id)
			continue
		}
		fresh++
	}
	if fresh < f.cfg.Quorum {
		return
	}
	f.declareDead()
	f.flood(verdict{Root: f.r.root, Epoch: f.epoch}.encode())
}

func (f *RNFD) declareDead() {
	f.dead = true
	f.verdictAt = f.r.k.Now()
	f.r.rootDead = true
	f.r.reg.Counter("rnfd.verdicts").Inc()
	f.r.rec.Emit(int32(f.r.id), trace.RNFDVerdict, int64(f.r.root), int64(len(f.suspects)), 0, 0)
	if f.OnVerdict != nil {
		f.OnVerdict()
	}
}

func (f *RNFD) flood(raw []byte) {
	f.r.reg.Counter("rnfd.msgs_sent").Inc()
	f.r.lnk.Broadcast(link.ProtoRouting, raw)
}
