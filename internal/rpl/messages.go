package rpl

import (
	"encoding/binary"
	"fmt"

	"iiotds/internal/radio"
)

// msgType discriminates routing control messages on link.ProtoRouting.
type msgType byte

const (
	msgDIO msgType = 1 // DODAG Information Object: version, rank, root
	msgDAO msgType = 2 // Destination Advertisement Object: downward route
	msgDIS msgType = 3 // DODAG Information Solicitation
	// RNFD messages (paper ref [32]).
	msgSuspect msgType = 4 // a sentinel suspects the root is dead
	msgVerdict msgType = 5 // collective verdict: root is dead
)

// InfiniteRank marks a detached node (RPL's INFINITE_RANK).
const InfiniteRank uint16 = 0xFFFF

// dio is the DODAG beacon.
type dio struct {
	Version uint8
	Rank    uint16
	Root    radio.NodeID
}

func (d dio) encode() []byte {
	buf := make([]byte, 6)
	buf[0] = byte(msgDIO)
	buf[1] = d.Version
	binary.BigEndian.PutUint16(buf[2:4], d.Rank)
	binary.BigEndian.PutUint16(buf[4:6], uint16(d.Root))
	return buf
}

func decodeDIO(raw []byte) (dio, error) {
	if len(raw) < 6 || msgType(raw[0]) != msgDIO {
		return dio{}, fmt.Errorf("rpl: bad DIO (%d bytes)", len(raw))
	}
	return dio{
		Version: raw[1],
		Rank:    binary.BigEndian.Uint16(raw[2:4]),
		Root:    radio.NodeID(binary.BigEndian.Uint16(raw[4:6])),
	}, nil
}

// dao advertises a downward route for Target; forwarded parent-by-parent
// toward the root in storing mode.
type dao struct {
	Target radio.NodeID
	Seq    uint16
}

func (d dao) encode() []byte {
	buf := make([]byte, 5)
	buf[0] = byte(msgDAO)
	binary.BigEndian.PutUint16(buf[1:3], uint16(d.Target))
	binary.BigEndian.PutUint16(buf[3:5], d.Seq)
	return buf
}

func decodeDAO(raw []byte) (dao, error) {
	if len(raw) < 5 || msgType(raw[0]) != msgDAO {
		return dao{}, fmt.Errorf("rpl: bad DAO (%d bytes)", len(raw))
	}
	return dao{
		Target: radio.NodeID(binary.BigEndian.Uint16(raw[1:3])),
		Seq:    binary.BigEndian.Uint16(raw[3:5]),
	}, nil
}

// suspect is an RNFD sentinel's local suspicion announcement.
type suspect struct {
	Sentinel radio.NodeID
	Epoch    uint8
}

func (s suspect) encode() []byte {
	buf := make([]byte, 4)
	buf[0] = byte(msgSuspect)
	binary.BigEndian.PutUint16(buf[1:3], uint16(s.Sentinel))
	buf[3] = s.Epoch
	return buf
}

func decodeSuspect(raw []byte) (suspect, error) {
	if len(raw) < 4 || msgType(raw[0]) != msgSuspect {
		return suspect{}, fmt.Errorf("rpl: bad suspect (%d bytes)", len(raw))
	}
	return suspect{
		Sentinel: radio.NodeID(binary.BigEndian.Uint16(raw[1:3])),
		Epoch:    raw[3],
	}, nil
}

// verdict is the flooded collective decision that the root is dead.
type verdict struct {
	Root  radio.NodeID
	Epoch uint8
}

func (v verdict) encode() []byte {
	buf := make([]byte, 4)
	buf[0] = byte(msgVerdict)
	binary.BigEndian.PutUint16(buf[1:3], uint16(v.Root))
	buf[3] = v.Epoch
	return buf
}

func decodeVerdict(raw []byte) (verdict, error) {
	if len(raw) < 4 || msgType(raw[0]) != msgVerdict {
		return verdict{}, fmt.Errorf("rpl: bad verdict (%d bytes)", len(raw))
	}
	return verdict{
		Root:  radio.NodeID(binary.BigEndian.Uint16(raw[1:3])),
		Epoch: raw[3],
	}, nil
}
