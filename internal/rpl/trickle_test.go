package rpl

import (
	"testing"
	"time"

	"iiotds/internal/sim"
)

func TestTrickleTransmitsOncePerInterval(t *testing.T) {
	k := sim.New(1)
	count := 0
	tr := NewTrickle(k, TrickleConfig{Imin: time.Second, Doublings: 3, K: 1}, func() { count++ })
	tr.Start()
	// Intervals: 1,2,4,8,8,8... over 31s that is 1+2+4+8+8+8 = 6 full intervals.
	k.RunUntil(31 * time.Second)
	if count < 5 || count > 7 {
		t.Fatalf("transmissions = %d, want ≈6", count)
	}
	if tr.Interval() != 8*time.Second {
		t.Fatalf("interval = %v, want Imax 8s", tr.Interval())
	}
}

func TestTrickleExponentialBackoffReducesRate(t *testing.T) {
	k := sim.New(2)
	var times []sim.Time
	tr := NewTrickle(k, TrickleConfig{Imin: time.Second, Doublings: 5, K: 1}, func() {
		times = append(times, k.Now())
	})
	tr.Start()
	k.RunUntil(2 * time.Minute)
	if len(times) < 3 {
		t.Fatalf("too few transmissions: %d", len(times))
	}
	// Steady-state gaps must be much larger than initial gaps.
	first := times[1] - times[0]
	last := times[len(times)-1] - times[len(times)-2]
	if last <= first {
		t.Fatalf("no backoff: first gap %v, last gap %v", first, last)
	}
}

func TestTrickleSuppression(t *testing.T) {
	k := sim.New(3)
	count := 0
	tr := NewTrickle(k, TrickleConfig{Imin: time.Second, Doublings: 2, K: 2}, func() { count++ })
	tr.Start()
	// Simulate hearing 2 consistent messages early in every interval.
	k.Every(200*time.Millisecond, 0, func() { tr.Hear(); tr.Hear() })
	k.RunUntil(time.Minute)
	if count != 0 {
		t.Fatalf("suppression failed: %d transmissions", count)
	}
	if tr.Suppressed == 0 {
		t.Fatal("no suppressions recorded")
	}
}

func TestTrickleResetReturnsToImin(t *testing.T) {
	k := sim.New(4)
	tr := NewTrickle(k, TrickleConfig{Imin: time.Second, Doublings: 4, K: 1}, func() {})
	tr.Start()
	k.RunUntil(30 * time.Second) // back off to Imax
	if tr.Interval() <= time.Second {
		t.Fatal("interval did not grow")
	}
	tr.Reset()
	if tr.Interval() != time.Second {
		t.Fatalf("interval after reset = %v, want Imin", tr.Interval())
	}
	if tr.Resets != 1 {
		t.Fatalf("Resets = %d", tr.Resets)
	}
}

func TestTrickleResetAtIminIsNoop(t *testing.T) {
	k := sim.New(5)
	count := 0
	tr := NewTrickle(k, TrickleConfig{Imin: 10 * time.Second, Doublings: 2, K: 1}, func() { count++ })
	tr.Start()
	// Reset storm at Imin must not multiply transmissions.
	k.Every(100*time.Millisecond, 0, func() { tr.Reset() })
	k.RunUntil(30 * time.Second)
	if count > 4 {
		t.Fatalf("reset storm caused %d transmissions in 3 intervals", count)
	}
}

func TestTrickleStop(t *testing.T) {
	k := sim.New(6)
	count := 0
	tr := NewTrickle(k, TrickleConfig{Imin: time.Second, Doublings: 2, K: 1}, func() { count++ })
	tr.Start()
	k.RunUntil(3 * time.Second)
	got := count
	tr.Stop()
	k.RunUntil(time.Minute)
	if count != got {
		t.Fatal("trickle fired after Stop")
	}
	tr.Reset() // must not panic or restart
	k.RunUntil(2 * time.Minute)
	if count != got {
		t.Fatal("Reset restarted a stopped trickle")
	}
}

func TestTrickleFiresInSecondHalf(t *testing.T) {
	k := sim.New(7)
	var at sim.Time
	tr := NewTrickle(k, TrickleConfig{Imin: 10 * time.Second, Doublings: 1, K: 1}, func() {
		if at == 0 {
			at = k.Now()
		}
	})
	tr.Start()
	k.RunUntil(10 * time.Second)
	if at < 5*time.Second || at >= 10*time.Second {
		t.Fatalf("first fire at %v, want within [5s,10s)", at)
	}
}
