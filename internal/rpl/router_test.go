package rpl

import (
	"testing"
	"testing/quick"
	"time"

	"iiotds/internal/link"
	"iiotds/internal/lowpan"
	"iiotds/internal/mac"
	"iiotds/internal/metrics"
	"iiotds/internal/radio"
	"iiotds/internal/sim"
	"iiotds/internal/trace"
)

// testNet is a small emulated mesh with node 0 as DODAG root.
type testNet struct {
	k       *sim.Kernel
	m       *radio.Medium
	macs    []*mac.CSMA
	links   []*link.Link
	routers []*Router
	reg     *metrics.Registry
}

func fastConfig() Config {
	return Config{
		Trickle:             TrickleConfig{Imin: 500 * time.Millisecond, Doublings: 4, K: 3},
		DAOInterval:         5 * time.Second,
		ParentProbeInterval: 5 * time.Second,
	}
}

func buildNet(t *testing.T, top radio.Topology, seed int64) *testNet {
	t.Helper()
	k := sim.New(seed)
	reg := metrics.NewRegistry()
	m := radio.NewMedium(k, radio.DefaultParams(), reg)
	n := len(top)
	net := &testNet{k: k, m: m, reg: reg,
		macs:    make([]*mac.CSMA, n),
		links:   make([]*link.Link, n),
		routers: make([]*Router, n),
	}
	for i := 0; i < n; i++ {
		id := radio.NodeID(i)
		idx := i
		m.Attach(id, top[i], radio.ReceiverFunc(func(f radio.Frame) {
			net.macs[idx].RadioReceive(f)
		}))
		net.macs[i] = mac.NewCSMA(m, id, mac.CSMAConfig{})
		net.macs[i].Start()
		net.links[i] = link.New(id, net.macs[i])
		net.routers[i] = NewRouter(k, net.links[i], i == 0, 0, fastConfig(), reg)
	}
	for _, r := range net.routers {
		r.Start()
	}
	return net
}

// kill crashes node i completely.
func (n *testNet) kill(i int) {
	n.routers[i].Stop()
	n.macs[i].Stop()
	n.m.SetDown(radio.NodeID(i), true)
}

func (n *testNet) allJoined() bool {
	for _, r := range n.routers {
		if j, _ := r.Joined(); !j {
			return false
		}
		if r.Partitioned() {
			return false
		}
	}
	return true
}

func TestDODAGFormation(t *testing.T) {
	// 5x5 grid, 15 m spacing: multi-hop but well connected.
	net := buildNet(t, radio.GridTopology(25, 15), 42)
	net.k.RunUntil(60 * time.Second)
	if !net.allJoined() {
		for i, r := range net.routers {
			t.Logf("node %d: rank=%d parent=%d", i, r.Rank(), r.Parent())
		}
		t.Fatal("not all nodes joined the DODAG")
	}
	if net.routers[0].Rank() != 256 {
		t.Fatalf("root rank = %d, want 256", net.routers[0].Rank())
	}
	// The far corner (node 24) must be strictly deeper than a root
	// neighbor (node 1).
	if net.routers[24].Rank() <= net.routers[1].Rank() {
		t.Fatalf("corner rank %d not deeper than near-root rank %d",
			net.routers[24].Rank(), net.routers[1].Rank())
	}
}

func TestUpwardDelivery(t *testing.T) {
	net := buildNet(t, radio.GridTopology(16, 15), 7)
	var got []byte
	var from radio.NodeID
	net.routers[0].Handle(lowpan.ProtoRaw, func(src radio.NodeID, p []byte) {
		from, got = src, append([]byte(nil), p...)
	})
	net.k.RunUntil(30 * time.Second)
	if err := net.routers[15].SendUp(lowpan.ProtoRaw, []byte("temp=21.5")); err != nil {
		t.Fatalf("SendUp: %v", err)
	}
	net.k.RunFor(10 * time.Second)
	if string(got) != "temp=21.5" || from != 15 {
		t.Fatalf("root got %q from %d", got, from)
	}
}

func TestDownwardDelivery(t *testing.T) {
	net := buildNet(t, radio.GridTopology(16, 15), 8)
	var got []byte
	net.routers[15].Handle(lowpan.ProtoRaw, func(src radio.NodeID, p []byte) {
		got = append([]byte(nil), p...)
	})
	// Wait for DAOs to install storing-mode routes at the root.
	net.k.RunUntil(40 * time.Second)
	if net.routers[0].RouteCount() == 0 {
		t.Fatal("root learned no downward routes")
	}
	if err := net.routers[0].SendTo(15, lowpan.ProtoRaw, []byte("actuate:on")); err != nil {
		t.Fatalf("SendTo: %v", err)
	}
	net.k.RunFor(10 * time.Second)
	if string(got) != "actuate:on" {
		t.Fatalf("leaf got %q", got)
	}
}

func TestLargePayloadFragmentsEndToEnd(t *testing.T) {
	net := buildNet(t, radio.GridTopology(9, 15), 9)
	payload := make([]byte, 600)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	var got []byte
	net.routers[0].Handle(lowpan.ProtoRaw, func(_ radio.NodeID, p []byte) {
		got = append([]byte(nil), p...)
	})
	net.k.RunUntil(30 * time.Second)
	if err := net.routers[8].SendUp(lowpan.ProtoRaw, payload); err != nil {
		t.Fatal(err)
	}
	net.k.RunFor(15 * time.Second)
	if len(got) != len(payload) {
		t.Fatalf("got %d bytes, want %d", len(got), len(payload))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("payload corrupted at byte %d", i)
		}
	}
}

func TestParentFailover(t *testing.T) {
	// Diamond: 0 (root) — {1,2} — 3. Node 3 must survive losing one
	// parent candidate.
	top := radio.Topology{
		{X: 0, Y: 0},   // 0 root
		{X: 15, Y: 8},  // 1
		{X: 15, Y: -8}, // 2
		{X: 30, Y: 0},  // 3: reaches 1 and 2, not 0 (30m > 20m reliable... still in gray)
	}
	net := buildNet(t, top, 10)
	// Make 3's direct gray-region link to the root useless so it must
	// route through 1 or 2.
	net.m.SetLinkPRR(0, 3, 0)
	net.m.SetLinkPRR(3, 0, 0)
	net.k.RunUntil(30 * time.Second)
	if net.routers[3].Partitioned() {
		t.Fatal("node 3 did not join")
	}
	firstParent := net.routers[3].Parent()
	if firstParent != 1 && firstParent != 2 {
		t.Fatalf("node 3 parent = %d, want 1 or 2", firstParent)
	}
	net.kill(int(firstParent))
	net.k.RunFor(90 * time.Second)
	second := net.routers[3].Parent()
	if second == firstParent || second == NoParent {
		t.Fatalf("node 3 did not fail over: parent=%d", second)
	}
	// Traffic still flows after failover.
	got := false
	net.routers[0].Handle(lowpan.ProtoRaw, func(radio.NodeID, []byte) { got = true })
	if err := net.routers[3].SendUp(lowpan.ProtoRaw, []byte("x")); err != nil {
		t.Fatal(err)
	}
	net.k.RunFor(10 * time.Second)
	if !got {
		t.Fatal("no delivery after failover")
	}
}

func TestRootDeathPartitionsNetwork(t *testing.T) {
	net := buildNet(t, radio.LineTopology(4, 15), 11)
	net.k.RunUntil(30 * time.Second)
	if !net.allJoined() {
		t.Fatal("network did not converge")
	}
	net.kill(0)
	net.k.RunFor(3 * time.Minute)
	for i := 1; i < 4; i++ {
		if !net.routers[i].Partitioned() {
			t.Fatalf("node %d still thinks it has a path after root death (parent=%d rank=%d)",
				i, net.routers[i].Parent(), net.routers[i].Rank())
		}
	}
}

func TestRNFDCollectiveDetection(t *testing.T) {
	net := buildNet(t, radio.GridTopology(16, 15), 12)
	for i := 1; i < 16; i++ {
		net.routers[i].AttachRNFD(RNFDConfig{SuspectTimeout: 20 * time.Second, Quorum: 2})
	}
	net.k.RunUntil(30 * time.Second)
	killAt := net.k.Now()
	net.kill(0)
	net.k.RunFor(3 * time.Minute)
	detected := 0
	var worst sim.Time
	for i := 1; i < 16; i++ {
		if net.routers[i].RootDead() {
			detected++
			if d, at := net.routers[i].rnfd.Dead(); d && at-killAt > worst {
				worst = at - killAt
			}
		}
	}
	if detected < 12 {
		t.Fatalf("only %d/15 nodes learned of root death", detected)
	}
	if worst > 2*time.Minute {
		t.Fatalf("slowest detection %v too slow", worst)
	}
}

func TestRNFDNoFalsePositiveWhileRootAlive(t *testing.T) {
	net := buildNet(t, radio.GridTopology(9, 15), 13)
	for i := 1; i < 9; i++ {
		net.routers[i].AttachRNFD(RNFDConfig{SuspectTimeout: 30 * time.Second, Quorum: 2})
	}
	net.k.RunUntil(5 * time.Minute)
	for i := 1; i < 9; i++ {
		if net.routers[i].RootDead() {
			t.Fatalf("node %d falsely declared the live root dead", i)
		}
	}
}

func TestGlobalRepairBumpsVersionEverywhere(t *testing.T) {
	net := buildNet(t, radio.GridTopology(9, 15), 14)
	net.k.RunUntil(30 * time.Second)
	net.routers[0].GlobalRepair()
	net.k.RunFor(60 * time.Second)
	for i, r := range net.routers {
		if r.Version() != 2 {
			t.Fatalf("node %d version = %d, want 2", i, r.Version())
		}
		if r.Partitioned() {
			t.Fatalf("node %d did not rejoin after global repair", i)
		}
	}
}

func TestHopLimitDropsLoopedTraffic(t *testing.T) {
	top := radio.LineTopology(3, 15)
	k := sim.New(15)
	reg := metrics.NewRegistry()
	m := radio.NewMedium(k, radio.DefaultParams(), reg)
	macs := make([]*mac.CSMA, 3)
	links := make([]*link.Link, 3)
	routers := make([]*Router, 3)
	cfg := fastConfig()
	cfg.HopLimit = 1 // dies at the first forwarder
	for i := 0; i < 3; i++ {
		id := radio.NodeID(i)
		idx := i
		m.Attach(id, top[i], radio.ReceiverFunc(func(f radio.Frame) { macs[idx].RadioReceive(f) }))
		macs[i] = mac.NewCSMA(m, id, mac.CSMAConfig{})
		macs[i].Start()
		links[i] = link.New(id, macs[i])
		routers[i] = NewRouter(k, links[i], i == 0, 0, cfg, reg)
		routers[i].Start()
	}
	got := false
	routers[0].Handle(lowpan.ProtoRaw, func(radio.NodeID, []byte) { got = true })
	k.RunUntil(30 * time.Second)
	if routers[2].Parent() != 1 {
		t.Skipf("node 2 joined via %d, need 2-hop path", routers[2].Parent())
	}
	if err := routers[2].SendUp(lowpan.ProtoRaw, []byte("x")); err != nil {
		t.Fatal(err)
	}
	k.RunFor(10 * time.Second)
	if got {
		t.Fatal("datagram with hop limit 1 crossed 2 hops")
	}
	if reg.Counter("rpl.hoplimit_drops").Value() == 0 {
		t.Fatal("hop-limit drop not counted")
	}
}

func TestSendWithNoRouteFails(t *testing.T) {
	k := sim.New(16)
	m := radio.NewMedium(k, radio.DefaultParams(), nil)
	var mc *mac.CSMA
	m.Attach(5, radio.Position{}, radio.ReceiverFunc(func(f radio.Frame) { mc.RadioReceive(f) }))
	mc = mac.NewCSMA(m, 5, mac.CSMAConfig{})
	mc.Start()
	r := NewRouter(k, link.New(5, mc), false, 0, fastConfig(), nil)
	r.Start()
	if err := r.SendUp(lowpan.ProtoRaw, []byte("x")); err == nil {
		t.Fatal("detached node accepted an upward send")
	}
}

func TestLocalDeliveryShortCircuits(t *testing.T) {
	k := sim.New(17)
	m := radio.NewMedium(k, radio.DefaultParams(), nil)
	var mc *mac.CSMA
	m.Attach(0, radio.Position{}, radio.ReceiverFunc(func(f radio.Frame) { mc.RadioReceive(f) }))
	mc = mac.NewCSMA(m, 0, mac.CSMAConfig{})
	mc.Start()
	r := NewRouter(k, link.New(0, mc), true, 0, fastConfig(), nil)
	r.Start()
	var got []byte
	r.Handle(lowpan.ProtoRaw, func(_ radio.NodeID, p []byte) { got = p })
	if err := r.SendTo(0, lowpan.ProtoRaw, []byte("self")); err != nil {
		t.Fatal(err)
	}
	if string(got) != "self" {
		t.Fatalf("self delivery got %q", got)
	}
}

func TestMessageCodecsRoundTrip(t *testing.T) {
	if err := quick.Check(func(v uint8, rank uint16, root uint16) bool {
		d, err := decodeDIO(dio{Version: v, Rank: rank, Root: radio.NodeID(root)}.encode())
		return err == nil && d.Version == v && d.Rank == rank && d.Root == radio.NodeID(root)
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(target uint16, seq uint16) bool {
		d, err := decodeDAO(dao{Target: radio.NodeID(target), Seq: seq}.encode())
		return err == nil && d.Target == radio.NodeID(target) && d.Seq == seq
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(s uint16, e uint8) bool {
		d, err := decodeSuspect(suspect{Sentinel: radio.NodeID(s), Epoch: e}.encode())
		return err == nil && d.Sentinel == radio.NodeID(s) && d.Epoch == e
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(root uint16, e uint8) bool {
		d, err := decodeVerdict(verdict{Root: radio.NodeID(root), Epoch: e}.encode())
		return err == nil && d.Root == radio.NodeID(root) && d.Epoch == e
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestMalformedControlMessagesIgnored(t *testing.T) {
	net := buildNet(t, radio.GridTopology(4, 10), 18)
	// Inject garbage control frames; the network must still converge.
	net.k.Every(time.Second, 0, func() {
		net.links[1].Broadcast(link.ProtoRouting, []byte{0xFF, 0xAA})
		net.links[1].Broadcast(link.ProtoRouting, []byte{byte(msgDIO)}) // truncated
	})
	net.k.RunUntil(40 * time.Second)
	if !net.allJoined() {
		t.Fatal("garbage control traffic prevented convergence")
	}
}

func TestRouteExpiry(t *testing.T) {
	net := buildNet(t, radio.GridTopology(4, 10), 19)
	net.k.RunUntil(30 * time.Second)
	if net.routers[0].RouteCount() == 0 {
		t.Fatal("no routes learned")
	}
	// Kill a leaf; its route must eventually expire at the root.
	net.kill(3)
	net.k.RunFor(2 * time.Minute)
	if r := net.routers[0].lookupRoute(3); r != nil {
		t.Fatal("route to dead node did not expire")
	}
}

func TestDuplicateHandlerPanics(t *testing.T) {
	k := sim.New(20)
	m := radio.NewMedium(k, radio.DefaultParams(), nil)
	var mc *mac.CSMA
	m.Attach(0, radio.Position{}, radio.ReceiverFunc(func(f radio.Frame) { mc.RadioReceive(f) }))
	mc = mac.NewCSMA(m, 0, mac.CSMAConfig{})
	r := NewRouter(k, link.New(0, mc), true, 0, fastConfig(), nil)
	r.Handle(lowpan.ProtoRaw, func(radio.NodeID, []byte) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Handle(lowpan.ProtoRaw, func(radio.NodeID, []byte) {})
}

// TestRNFDVerdictVisibleInTrace pins the diagnosability contract that
// resolved the E5 open item: when RNFD declares the root dead, the
// flight recorder must hold the full evidence chain — sentinel
// qualification, local suspicion, quorum — ending in a verdict event,
// and Router.RootDead() must flip true on the nodes that emitted it.
func TestRNFDVerdictVisibleInTrace(t *testing.T) {
	net := buildNet(t, radio.GridTopology(16, 15), 14)
	// Sized to retain the whole run (~5k radio+MAC events/s on this
	// grid): the ring keeps exact per-type counts through a wrap, but
	// the per-event checks below need the verdict events themselves
	// still resident.
	rec := trace.New(1<<20, net.k.Now)
	net.m.SetRecorder(rec)
	for i, r := range net.routers {
		r.SetRecorder(rec)
		if i > 0 {
			r.AttachRNFD(RNFDConfig{SuspectTimeout: 20 * time.Second, Quorum: 2})
		}
	}
	net.k.RunUntil(30 * time.Second)
	net.kill(0)
	net.k.RunFor(2 * time.Minute)

	for _, typ := range []trace.Type{trace.RNFDSentinel, trace.RNFDSuspect, trace.RNFDVerdict} {
		if rec.Count(typ) == 0 {
			t.Errorf("no %s events in trace", typ)
		}
	}
	// Every node that emitted a verdict must report the root dead, and
	// at least one must exist.
	verdictNodes := 0
	rec.Each(trace.All().ByType(trace.RNFDVerdict), func(e trace.Event) {
		verdictNodes++
		if !net.routers[e.Node].RootDead() {
			t.Errorf("node %d emitted a verdict but RootDead() is false", e.Node)
		}
		if e.A != 0 {
			t.Errorf("verdict names root %d, want 0", e.A)
		}
	})
	if verdictNodes == 0 {
		t.Fatal("no RNFD verdict events recorded")
	}
}
