package adapter

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"iiotds/internal/registry"
)

// ProtocolBLEGatt names the BLE-GATT-like TLV protocol: characteristics
// identified by 16-bit UUIDs carrying little-endian IEEE-754 floats.
const ProtocolBLEGatt = "blegatt"

// GattMap maps capability names to characteristic UUIDs.
type GattMap map[string]GattChar

// GattChar is one characteristic mapping.
type GattChar struct {
	UUID     uint16
	Unit     string
	Writable bool
}

// GattAdapter translates BLE-GATT-like frames.
type GattAdapter struct {
	mu     sync.Mutex
	models map[string]GattMap
}

// NewGattAdapter returns an adapter with no models registered.
func NewGattAdapter() *GattAdapter {
	return &GattAdapter{models: make(map[string]GattMap)}
}

// RegisterModel installs the characteristic map for a device model.
func (a *GattAdapter) RegisterModel(model string, m GattMap) {
	a.mu.Lock()
	a.models[model] = m
	a.mu.Unlock()
}

// Protocol implements Adapter.
func (a *GattAdapter) Protocol() string { return ProtocolBLEGatt }

func (a *GattAdapter) mapFor(dev *registry.Device) (GattMap, error) {
	if dev.Protocol != ProtocolBLEGatt {
		return nil, ErrWrongProtocol
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	m, ok := a.models[dev.Model]
	if !ok {
		return nil, fmt.Errorf("adapter: no gatt map for model %q", dev.Model)
	}
	return m, nil
}

// Decode parses a notification frame: repeated [uuidLE:2][len:1][value].
func (a *GattAdapter) Decode(dev *registry.Device, raw []byte, at time.Duration) ([]registry.Observation, error) {
	m, err := a.mapFor(dev)
	if err != nil {
		return nil, err
	}
	byUUID := make(map[uint16]string, len(m))
	for name, ch := range m {
		byUUID[ch.UUID] = name
	}
	var obs []registry.Observation
	p := 0
	for p < len(raw) {
		if p+3 > len(raw) {
			return nil, fmt.Errorf("%w: gatt TLV header", ErrBadFrame)
		}
		uuid := binary.LittleEndian.Uint16(raw[p : p+2])
		l := int(raw[p+2])
		p += 3
		if p+l > len(raw) {
			return nil, fmt.Errorf("%w: gatt TLV value", ErrBadFrame)
		}
		val := raw[p : p+l]
		p += l
		name, known := byUUID[uuid]
		if !known {
			continue // foreign characteristic: skip, per BLE practice
		}
		if l != 4 {
			return nil, fmt.Errorf("%w: gatt float length %d", ErrBadFrame, l)
		}
		obs = append(obs, registry.Observation{
			Device: dev.ID,
			Cap:    name,
			Value:  float64(math.Float32frombits(binary.LittleEndian.Uint32(val))),
			Unit:   m[name].Unit,
			At:     at,
		})
	}
	sortObs(obs)
	return obs, nil
}

// EncodeCommand renders a write frame: [uuidLE:2][4][float32LE].
func (a *GattAdapter) EncodeCommand(dev *registry.Device, cmd registry.Command) ([]byte, error) {
	m, err := a.mapFor(dev)
	if err != nil {
		return nil, err
	}
	ch, ok := m[cmd.Cap]
	if !ok || !ch.Writable {
		return nil, fmt.Errorf("%w: %s/%s", ErrUnknownCapability, dev.ID, cmd.Cap)
	}
	out := make([]byte, 7)
	binary.LittleEndian.PutUint16(out[0:2], ch.UUID)
	out[2] = 4
	binary.LittleEndian.PutUint32(out[3:7], math.Float32bits(float32(cmd.Value)))
	return out, nil
}

var _ Adapter = (*GattAdapter)(nil)

// GattEmulator is a synthetic BLE-GATT-like peripheral.
type GattEmulator struct {
	dev *registry.Device
	m   GattMap

	mu    sync.Mutex
	state map[string]float64
}

// NewGattEmulator creates an emulator for dev with characteristic map m.
func NewGattEmulator(dev *registry.Device, m GattMap) *GattEmulator {
	return &GattEmulator{dev: dev, m: m, state: make(map[string]float64)}
}

// Device implements Emulator.
func (e *GattEmulator) Device() *registry.Device { return e.dev }

// Frame implements Emulator.
func (e *GattEmulator) Frame() []byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	// Render characteristics in UUID order for determinism.
	type kv struct {
		uuid uint16
		val  float64
	}
	var items []kv
	for name, ch := range e.m {
		items = append(items, kv{ch.UUID, e.state[name]})
	}
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].uuid < items[j-1].uuid; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	var out []byte
	for _, it := range items {
		var b [7]byte
		binary.LittleEndian.PutUint16(b[0:2], it.uuid)
		b[2] = 4
		binary.LittleEndian.PutUint32(b[3:7], math.Float32bits(float32(it.val)))
		out = append(out, b[:]...)
	}
	return out
}

// Apply implements Emulator.
func (e *GattEmulator) Apply(raw []byte) error {
	if len(raw) != 7 || raw[2] != 4 {
		return fmt.Errorf("%w: gatt write frame", ErrBadFrame)
	}
	uuid := binary.LittleEndian.Uint16(raw[0:2])
	val := math.Float32frombits(binary.LittleEndian.Uint32(raw[3:7]))
	e.mu.Lock()
	defer e.mu.Unlock()
	for name, ch := range e.m {
		if ch.UUID == uuid {
			if !ch.Writable {
				return fmt.Errorf("adapter: characteristic %#x read-only", uuid)
			}
			e.state[name] = float64(val)
			return nil
		}
	}
	return fmt.Errorf("adapter: unknown characteristic %#x", uuid)
}

// State implements Emulator.
func (e *GattEmulator) State(cap string) (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.state[cap]
	return v, ok
}

// SetState implements Emulator.
func (e *GattEmulator) SetState(cap string, v float64) {
	e.mu.Lock()
	e.state[cap] = v
	e.mu.Unlock()
}

var _ Emulator = (*GattEmulator)(nil)
