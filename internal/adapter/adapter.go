// Package adapter implements protocol adapters between heterogeneous
// (including legacy) field-device protocols and the canonical device
// model. Three emulated protocol families cover the heterogeneity §III
// describes: a Modbus-like register protocol (industrial legacy), a
// BLE-GATT-like TLV protocol (consumer-grade radio peripherals), and a
// proprietary ASCII-TLV vendor protocol. Each family also ships a device
// emulator so the adapters are exercised against realistic frames.
package adapter

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"iiotds/internal/registry"
)

// Adapter translates one protocol family to and from the canonical model.
type Adapter interface {
	// Protocol returns the protocol name this adapter handles.
	Protocol() string
	// Decode turns a raw device frame into canonical observations.
	Decode(dev *registry.Device, raw []byte, at time.Duration) ([]registry.Observation, error)
	// EncodeCommand turns a canonical command into a raw device frame.
	EncodeCommand(dev *registry.Device, cmd registry.Command) ([]byte, error)
}

// Common errors.
var (
	ErrUnknownCapability = errors.New("adapter: unknown capability")
	ErrBadFrame          = errors.New("adapter: malformed frame")
	ErrWrongProtocol     = errors.New("adapter: device/protocol mismatch")
)

// Mux routes devices to their protocol adapters: the O(M) integration
// point (one adapter per family, any device to any consumer).
type Mux struct {
	adapters map[string]Adapter
}

// NewMux returns a Mux with the given adapters installed.
func NewMux(adapters ...Adapter) *Mux {
	m := &Mux{adapters: make(map[string]Adapter)}
	for _, a := range adapters {
		m.adapters[a.Protocol()] = a
	}
	return m
}

// Protocols returns the registered protocol names, sorted.
func (m *Mux) Protocols() []string {
	out := make([]string, 0, len(m.adapters))
	for p := range m.adapters {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Decode dispatches to the device's protocol adapter.
func (m *Mux) Decode(dev *registry.Device, raw []byte, at time.Duration) ([]registry.Observation, error) {
	a, ok := m.adapters[dev.Protocol]
	if !ok {
		return nil, fmt.Errorf("adapter: no adapter for protocol %q", dev.Protocol)
	}
	return a.Decode(dev, raw, at)
}

// EncodeCommand dispatches to the device's protocol adapter.
func (m *Mux) EncodeCommand(dev *registry.Device, cmd registry.Command) ([]byte, error) {
	a, ok := m.adapters[dev.Protocol]
	if !ok {
		return nil, fmt.Errorf("adapter: no adapter for protocol %q", dev.Protocol)
	}
	return a.EncodeCommand(dev, cmd)
}

// sortObs orders observations by capability name for deterministic
// output regardless of map iteration order.
func sortObs(obs []registry.Observation) {
	sort.Slice(obs, func(i, j int) bool { return obs[i].Cap < obs[j].Cap })
}

// Emulator is a synthetic field device: it renders its internal state as
// protocol frames and applies raw command frames, exactly as the physical
// device would.
type Emulator interface {
	// Device returns the canonical description.
	Device() *registry.Device
	// Frame renders the device's current state as a protocol frame.
	Frame() []byte
	// Apply executes a raw command frame against the device state.
	Apply(raw []byte) error
	// State reads back a capability's current value (for verification).
	State(cap string) (float64, bool)
	// SetState sets a capability's value (simulating the physical world).
	SetState(cap string, v float64)
}
