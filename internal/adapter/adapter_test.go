package adapter

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"iiotds/internal/registry"
)

// fixtures builds one device + emulator per protocol family and a Mux
// with all three adapters configured.
type fixtures struct {
	mux  *Mux
	devs map[string]*registry.Device
	emus map[string]Emulator
}

func newFixtures() *fixtures {
	mb := NewModbusAdapter()
	mbMap := ModbusMap{
		"temp":     {Register: 100, Scale: 100, Unit: "C"},
		"setpoint": {Register: 101, Scale: 100, Unit: "C", Writable: true},
		"rpm":      {Register: 102, Scale: 1, Unit: "rpm"},
	}
	mb.RegisterModel("plc-7", mbMap)
	mbDev := &registry.Device{
		ID: "press-1", Vendor: "Siematic", Model: "plc-7", Protocol: ProtocolModbus,
		Caps: []registry.Capability{
			{Name: "temp", Kind: registry.KindSensor, Unit: "C"},
			{Name: "setpoint", Kind: registry.KindActuator, Unit: "C"},
			{Name: "rpm", Kind: registry.KindSensor, Unit: "rpm"},
		},
	}

	ga := NewGattAdapter()
	gaMap := GattMap{
		"humidity": {UUID: 0x2A6F, Unit: "%"},
		"led":      {UUID: 0xFF01, Unit: "", Writable: true},
	}
	ga.RegisterModel("tag-3", gaMap)
	gaDev := &registry.Device{
		ID: "tag-42", Vendor: "Nordic-ish", Model: "tag-3", Protocol: ProtocolBLEGatt,
		Caps: []registry.Capability{
			{Name: "humidity", Kind: registry.KindSensor, Unit: "%"},
			{Name: "led", Kind: registry.KindActuator},
		},
	}

	vt := NewVendorTLVAdapter()
	vtMap := VendorMap{
		"flow":  {Tag: 'F', Unit: "l/min"},
		"valve": {Tag: 'V', Unit: "%", Writable: true},
	}
	vt.RegisterModel("fm-9", vtMap)
	vtDev := &registry.Device{
		ID: "flow-9", Vendor: "AcmeFluid", Model: "fm-9", Protocol: ProtocolVendorTLV,
		Caps: []registry.Capability{
			{Name: "flow", Kind: registry.KindSensor, Unit: "l/min"},
			{Name: "valve", Kind: registry.KindActuator, Unit: "%"},
		},
	}

	return &fixtures{
		mux:  NewMux(mb, ga, vt),
		devs: map[string]*registry.Device{"modbus": mbDev, "blegatt": gaDev, "vendortlv": vtDev},
		emus: map[string]Emulator{
			"modbus":    NewModbusEmulator(mbDev, mbMap),
			"blegatt":   NewGattEmulator(gaDev, gaMap),
			"vendortlv": NewVendorTLVEmulator(vtDev, vtMap),
		},
	}
}

func TestMuxProtocols(t *testing.T) {
	f := newFixtures()
	got := f.mux.Protocols()
	want := []string{"blegatt", "modbus", "vendortlv"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Protocols = %v", got)
	}
}

func TestDecodeAllFamilies(t *testing.T) {
	f := newFixtures()
	setups := map[string]map[string]float64{
		"modbus":    {"temp": 36.5, "setpoint": 40, "rpm": 900},
		"blegatt":   {"humidity": 55.5, "led": 1},
		"vendortlv": {"flow": 12.25, "valve": 50},
	}
	for proto, states := range setups {
		emu := f.emus[proto]
		for cap, v := range states {
			emu.SetState(cap, v)
		}
		obs, err := f.mux.Decode(f.devs[proto], emu.Frame(), time.Second)
		if err != nil {
			t.Fatalf("%s: Decode: %v", proto, err)
		}
		if len(obs) != len(states) {
			t.Fatalf("%s: got %d observations, want %d", proto, len(obs), len(states))
		}
		for _, o := range obs {
			want := states[o.Cap]
			if math.Abs(o.Value-want) > 0.01 {
				t.Errorf("%s/%s = %v, want %v", proto, o.Cap, o.Value, want)
			}
			if o.Device != f.devs[proto].ID || o.At != time.Second {
				t.Errorf("%s/%s metadata wrong: %+v", proto, o.Cap, o)
			}
		}
	}
}

func TestCommandRoundTripAllFamilies(t *testing.T) {
	f := newFixtures()
	cmds := map[string]registry.Command{
		"modbus":    {Device: "press-1", Cap: "setpoint", Value: 42.5},
		"blegatt":   {Device: "tag-42", Cap: "led", Value: 1},
		"vendortlv": {Device: "flow-9", Cap: "valve", Value: 75},
	}
	for proto, cmd := range cmds {
		raw, err := f.mux.EncodeCommand(f.devs[proto], cmd)
		if err != nil {
			t.Fatalf("%s: EncodeCommand: %v", proto, err)
		}
		if err := f.emus[proto].Apply(raw); err != nil {
			t.Fatalf("%s: Apply: %v", proto, err)
		}
		got, ok := f.emus[proto].State(cmd.Cap)
		if !ok || math.Abs(got-cmd.Value) > 0.01 {
			t.Fatalf("%s: device state = %v (ok=%v), want %v", proto, got, ok, cmd.Value)
		}
	}
}

func TestWriteToReadOnlyCapabilityFails(t *testing.T) {
	f := newFixtures()
	if _, err := f.mux.EncodeCommand(f.devs["modbus"], registry.Command{Cap: "temp", Value: 1}); err == nil {
		t.Fatal("write to read-only register accepted")
	}
	if _, err := f.mux.EncodeCommand(f.devs["blegatt"], registry.Command{Cap: "humidity", Value: 1}); err == nil {
		t.Fatal("write to read-only characteristic accepted")
	}
	if _, err := f.mux.EncodeCommand(f.devs["vendortlv"], registry.Command{Cap: "flow", Value: 1}); err == nil {
		t.Fatal("write to read-only tag accepted")
	}
}

func TestUnknownProtocolAndModel(t *testing.T) {
	f := newFixtures()
	ghost := &registry.Device{ID: "x", Protocol: "dnp3"}
	if _, err := f.mux.Decode(ghost, nil, 0); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	unknownModel := &registry.Device{ID: "y", Protocol: ProtocolModbus, Model: "plc-999"}
	if _, err := f.mux.Decode(unknownModel, []byte{1, 3, 0, 0, 0}, 0); err == nil {
		t.Fatal("unknown model accepted")
	}
	wrong := &registry.Device{ID: "z", Protocol: ProtocolBLEGatt, Model: "plc-7"}
	mb := NewModbusAdapter()
	if _, err := mb.Decode(wrong, nil, 0); err == nil {
		t.Fatal("protocol mismatch accepted")
	}
}

func TestMalformedFramesRejected(t *testing.T) {
	f := newFixtures()
	bad := map[string][][]byte{
		"modbus":    {{}, {1, 3}, {1, 9, 2, 0, 0, 0, 0}, {1, 3, 3, 0, 100, 0}},
		"blegatt":   {{0x6F}, {0x6F, 0x2A, 9, 1}, {0x6F, 0x2A, 2, 1, 2}},
		"vendortlv": {{'F'}, {'F', 9, 'x'}, {'F', 2, 'a', 'b'}},
	}
	for proto, frames := range bad {
		for i, raw := range frames {
			if _, err := f.mux.Decode(f.devs[proto], raw, 0); err == nil {
				t.Errorf("%s frame %d accepted", proto, i)
			}
		}
	}
}

func TestForeignGattCharacteristicSkipped(t *testing.T) {
	f := newFixtures()
	// A TLV for an unmapped UUID followed by a mapped one.
	emu := f.emus["blegatt"]
	emu.SetState("humidity", 40)
	frame := append([]byte{0x01, 0x10, 4, 0, 0, 0, 0}, emu.Frame()...)
	obs, err := f.mux.Decode(f.devs["blegatt"], frame, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range obs {
		if o.Cap == "humidity" && math.Abs(o.Value-40) < 0.01 {
			found = true
		}
	}
	if !found {
		t.Fatalf("mapped characteristic lost among foreign ones: %+v", obs)
	}
}

func TestPropertyVendorCommandRoundTrip(t *testing.T) {
	f := newFixtures()
	emu := f.emus["vendortlv"]
	check := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		raw, err := f.mux.EncodeCommand(f.devs["vendortlv"], registry.Command{Cap: "valve", Value: v})
		if err != nil {
			return false
		}
		if err := emu.Apply(raw); err != nil {
			return false
		}
		got, ok := emu.State("valve")
		return ok && math.Abs(got-v) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryIntegration(t *testing.T) {
	f := newFixtures()
	reg := registry.New()
	registered := 0
	reg.OnRegister(func(*registry.Device) { registered++ })
	for _, d := range f.devs {
		if err := reg.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	if reg.Len() != 3 || registered != 3 {
		t.Fatalf("Len=%d hooks=%d", reg.Len(), registered)
	}
	if err := reg.Register(f.devs["modbus"]); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if got := reg.ByProtocol(ProtocolModbus); len(got) != 1 || got[0].ID != "press-1" {
		t.Fatalf("ByProtocol = %v", got)
	}
	d, err := reg.Lookup("tag-42")
	if err != nil || d.Vendor != "Nordic-ish" {
		t.Fatalf("Lookup: %v", err)
	}
	if _, ok := d.Capability("humidity"); !ok {
		t.Fatal("capability lookup failed")
	}
	if err := reg.Deregister("tag-42"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Lookup("tag-42"); err == nil {
		t.Fatal("lookup after deregister succeeded")
	}
	o := registry.Observation{Device: "press-1", Cap: "temp"}
	if o.Topic() != "obs/press-1/temp" {
		t.Fatalf("Topic = %q", o.Topic())
	}
}
