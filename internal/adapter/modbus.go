package adapter

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"iiotds/internal/registry"
)

// ProtocolModbus names the Modbus-like register protocol.
const ProtocolModbus = "modbus"

// Modbus-like function codes.
const (
	fnReadHoldingResp = 0x03
	fnWriteSingle     = 0x06
)

// ModbusMap describes how a model's holding registers map to canonical
// capabilities: register address, scale (value = raw/scale), and unit.
type ModbusMap map[string]ModbusPoint

// ModbusPoint is one register mapping.
type ModbusPoint struct {
	Register uint16
	Scale    float64 // raw = value * Scale
	Unit     string
	Writable bool
}

// ModbusAdapter translates Modbus-like frames. Models are registered
// with their register maps, as a real integration would configure from
// device datasheets.
type ModbusAdapter struct {
	mu     sync.Mutex
	models map[string]ModbusMap
}

// NewModbusAdapter returns an adapter with no models registered.
func NewModbusAdapter() *ModbusAdapter {
	return &ModbusAdapter{models: make(map[string]ModbusMap)}
}

// RegisterModel installs the register map for a device model.
func (a *ModbusAdapter) RegisterModel(model string, m ModbusMap) {
	a.mu.Lock()
	a.models[model] = m
	a.mu.Unlock()
}

// Protocol implements Adapter.
func (a *ModbusAdapter) Protocol() string { return ProtocolModbus }

func (a *ModbusAdapter) mapFor(dev *registry.Device) (ModbusMap, error) {
	if dev.Protocol != ProtocolModbus {
		return nil, ErrWrongProtocol
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	m, ok := a.models[dev.Model]
	if !ok {
		return nil, fmt.Errorf("adapter: no modbus map for model %q", dev.Model)
	}
	return m, nil
}

// Decode parses a read-holding-registers response frame:
// [unit][0x03][byteCount][startRegHi][startRegLo][data...].
func (a *ModbusAdapter) Decode(dev *registry.Device, raw []byte, at time.Duration) ([]registry.Observation, error) {
	m, err := a.mapFor(dev)
	if err != nil {
		return nil, err
	}
	if len(raw) < 5 || raw[1] != fnReadHoldingResp {
		return nil, fmt.Errorf("%w: modbus header", ErrBadFrame)
	}
	count := int(raw[2])
	start := binary.BigEndian.Uint16(raw[3:5])
	data := raw[5:]
	if len(data) != count || count%2 != 0 {
		return nil, fmt.Errorf("%w: modbus byte count", ErrBadFrame)
	}
	var obs []registry.Observation
	for name, pt := range m {
		idx := int(pt.Register-start) * 2
		if pt.Register < start || idx+2 > len(data) {
			continue
		}
		rawVal := binary.BigEndian.Uint16(data[idx : idx+2])
		obs = append(obs, registry.Observation{
			Device: dev.ID,
			Cap:    name,
			Value:  float64(int16(rawVal)) / pt.Scale,
			Unit:   pt.Unit,
			At:     at,
		})
	}
	sortObs(obs)
	return obs, nil
}

// EncodeCommand renders a write-single-register frame:
// [unit][0x06][regHi][regLo][valHi][valLo].
func (a *ModbusAdapter) EncodeCommand(dev *registry.Device, cmd registry.Command) ([]byte, error) {
	m, err := a.mapFor(dev)
	if err != nil {
		return nil, err
	}
	pt, ok := m[cmd.Cap]
	if !ok || !pt.Writable {
		return nil, fmt.Errorf("%w: %s/%s", ErrUnknownCapability, dev.ID, cmd.Cap)
	}
	out := make([]byte, 6)
	out[0] = 1 // unit id
	out[1] = fnWriteSingle
	binary.BigEndian.PutUint16(out[2:4], pt.Register)
	binary.BigEndian.PutUint16(out[4:6], uint16(int16(cmd.Value*pt.Scale)))
	return out, nil
}

var _ Adapter = (*ModbusAdapter)(nil)

// ModbusEmulator is a synthetic Modbus-like device.
type ModbusEmulator struct {
	dev *registry.Device
	m   ModbusMap

	mu    sync.Mutex
	state map[string]float64
}

// NewModbusEmulator creates an emulator for dev using register map m.
func NewModbusEmulator(dev *registry.Device, m ModbusMap) *ModbusEmulator {
	return &ModbusEmulator{dev: dev, m: m, state: make(map[string]float64)}
}

// Device implements Emulator.
func (e *ModbusEmulator) Device() *registry.Device { return e.dev }

// Frame implements Emulator: renders all registers from the lowest to
// the highest mapped address.
func (e *ModbusEmulator) Frame() []byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	lo, hi := uint16(0xFFFF), uint16(0)
	for _, pt := range e.m {
		if pt.Register < lo {
			lo = pt.Register
		}
		if pt.Register > hi {
			hi = pt.Register
		}
	}
	n := int(hi-lo) + 1
	data := make([]byte, n*2)
	for name, pt := range e.m {
		idx := int(pt.Register-lo) * 2
		binary.BigEndian.PutUint16(data[idx:idx+2], uint16(int16(e.state[name]*pt.Scale)))
	}
	out := make([]byte, 0, 5+len(data))
	out = append(out, 1, fnReadHoldingResp, byte(len(data)))
	var start [2]byte
	binary.BigEndian.PutUint16(start[:], lo)
	out = append(out, start[:]...)
	return append(out, data...)
}

// Apply implements Emulator: executes a write-single-register frame.
func (e *ModbusEmulator) Apply(raw []byte) error {
	if len(raw) != 6 || raw[1] != fnWriteSingle {
		return fmt.Errorf("%w: modbus write frame", ErrBadFrame)
	}
	reg := binary.BigEndian.Uint16(raw[2:4])
	val := int16(binary.BigEndian.Uint16(raw[4:6]))
	e.mu.Lock()
	defer e.mu.Unlock()
	for name, pt := range e.m {
		if pt.Register == reg {
			if !pt.Writable {
				return fmt.Errorf("adapter: register %d read-only", reg)
			}
			e.state[name] = float64(val) / pt.Scale
			return nil
		}
	}
	return fmt.Errorf("adapter: unmapped register %d", reg)
}

// State implements Emulator.
func (e *ModbusEmulator) State(cap string) (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.state[cap]
	return v, ok
}

// SetState implements Emulator.
func (e *ModbusEmulator) SetState(cap string, v float64) {
	e.mu.Lock()
	e.state[cap] = v
	e.mu.Unlock()
}

var _ Emulator = (*ModbusEmulator)(nil)
