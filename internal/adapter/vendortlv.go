package adapter

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"iiotds/internal/registry"
)

// ProtocolVendorTLV names the proprietary ASCII-TLV protocol: the kind of
// undocumented vendor format industrial integrations routinely confront.
// Frames are repeated records of [tag:1][len:1][ascii decimal value].
const ProtocolVendorTLV = "vendortlv"

// VendorMap maps capability names to TLV tags.
type VendorMap map[string]VendorPoint

// VendorPoint is one tag mapping.
type VendorPoint struct {
	Tag      byte
	Unit     string
	Writable bool
}

// VendorTLVAdapter translates the vendor TLV protocol.
type VendorTLVAdapter struct {
	mu     sync.Mutex
	models map[string]VendorMap
}

// NewVendorTLVAdapter returns an adapter with no models registered.
func NewVendorTLVAdapter() *VendorTLVAdapter {
	return &VendorTLVAdapter{models: make(map[string]VendorMap)}
}

// RegisterModel installs the tag map for a device model.
func (a *VendorTLVAdapter) RegisterModel(model string, m VendorMap) {
	a.mu.Lock()
	a.models[model] = m
	a.mu.Unlock()
}

// Protocol implements Adapter.
func (a *VendorTLVAdapter) Protocol() string { return ProtocolVendorTLV }

func (a *VendorTLVAdapter) mapFor(dev *registry.Device) (VendorMap, error) {
	if dev.Protocol != ProtocolVendorTLV {
		return nil, ErrWrongProtocol
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	m, ok := a.models[dev.Model]
	if !ok {
		return nil, fmt.Errorf("adapter: no vendor map for model %q", dev.Model)
	}
	return m, nil
}

// Decode implements Adapter.
func (a *VendorTLVAdapter) Decode(dev *registry.Device, raw []byte, at time.Duration) ([]registry.Observation, error) {
	m, err := a.mapFor(dev)
	if err != nil {
		return nil, err
	}
	byTag := make(map[byte]string, len(m))
	for name, pt := range m {
		byTag[pt.Tag] = name
	}
	var obs []registry.Observation
	p := 0
	for p < len(raw) {
		if p+2 > len(raw) {
			return nil, fmt.Errorf("%w: vendor TLV header", ErrBadFrame)
		}
		tag, l := raw[p], int(raw[p+1])
		p += 2
		if p+l > len(raw) {
			return nil, fmt.Errorf("%w: vendor TLV value", ErrBadFrame)
		}
		text := string(raw[p : p+l])
		p += l
		name, known := byTag[tag]
		if !known {
			continue
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: vendor value %q", ErrBadFrame, text)
		}
		obs = append(obs, registry.Observation{
			Device: dev.ID,
			Cap:    name,
			Value:  v,
			Unit:   m[name].Unit,
			At:     at,
		})
	}
	sortObs(obs)
	return obs, nil
}

// EncodeCommand implements Adapter.
func (a *VendorTLVAdapter) EncodeCommand(dev *registry.Device, cmd registry.Command) ([]byte, error) {
	m, err := a.mapFor(dev)
	if err != nil {
		return nil, err
	}
	pt, ok := m[cmd.Cap]
	if !ok || !pt.Writable {
		return nil, fmt.Errorf("%w: %s/%s", ErrUnknownCapability, dev.ID, cmd.Cap)
	}
	// 'g' keeps huge magnitudes compact so the one-byte TLV length
	// cannot overflow, and -1 precision round-trips exactly.
	text := strconv.FormatFloat(cmd.Value, 'g', -1, 64)
	out := make([]byte, 0, 2+len(text))
	out = append(out, pt.Tag, byte(len(text)))
	return append(out, text...), nil
}

var _ Adapter = (*VendorTLVAdapter)(nil)

// VendorTLVEmulator is a synthetic vendor-protocol device.
type VendorTLVEmulator struct {
	dev *registry.Device
	m   VendorMap

	mu    sync.Mutex
	state map[string]float64
}

// NewVendorTLVEmulator creates an emulator for dev with tag map m.
func NewVendorTLVEmulator(dev *registry.Device, m VendorMap) *VendorTLVEmulator {
	return &VendorTLVEmulator{dev: dev, m: m, state: make(map[string]float64)}
}

// Device implements Emulator.
func (e *VendorTLVEmulator) Device() *registry.Device { return e.dev }

// Frame implements Emulator.
func (e *VendorTLVEmulator) Frame() []byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.m))
	for name := range e.m {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []byte
	for _, name := range names {
		text := strconv.FormatFloat(e.state[name], 'f', 2, 64)
		out = append(out, e.m[name].Tag, byte(len(text)))
		out = append(out, text...)
	}
	return out
}

// Apply implements Emulator.
func (e *VendorTLVEmulator) Apply(raw []byte) error {
	if len(raw) < 2 || int(raw[1])+2 != len(raw) {
		return fmt.Errorf("%w: vendor write frame", ErrBadFrame)
	}
	v, err := strconv.ParseFloat(string(raw[2:]), 64)
	if err != nil {
		return fmt.Errorf("%w: vendor write value", ErrBadFrame)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for name, pt := range e.m {
		if pt.Tag == raw[0] {
			if !pt.Writable {
				return fmt.Errorf("adapter: tag %d read-only", raw[0])
			}
			e.state[name] = v
			return nil
		}
	}
	return fmt.Errorf("adapter: unknown tag %d", raw[0])
}

// State implements Emulator.
func (e *VendorTLVEmulator) State(cap string) (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.state[cap]
	return v, ok
}

// SetState implements Emulator.
func (e *VendorTLVEmulator) SetState(cap string, v float64) {
	e.mu.Lock()
	e.state[cap] = v
	e.mu.Unlock()
}

var _ Emulator = (*VendorTLVEmulator)(nil)
