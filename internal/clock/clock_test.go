package clock

import (
	"sync"
	"testing"
	"time"

	"iiotds/internal/sim"
)

func TestKernelSchedulerUsesVirtualTime(t *testing.T) {
	k := sim.New(1)
	s := Kernel{K: k}
	fired := false
	s.Schedule(time.Hour, func() { fired = true })
	if s.Now() != 0 {
		t.Fatalf("Now() = %v before running", s.Now())
	}
	k.RunUntil(2 * time.Hour)
	if !fired {
		t.Fatal("scheduled call did not fire")
	}
	if s.Now() != 2*time.Hour {
		t.Fatalf("Now() = %v, want 2h", s.Now())
	}
}

func TestKernelSchedulerCancel(t *testing.T) {
	k := sim.New(1)
	s := Kernel{K: k}
	fired := false
	cancel := s.Schedule(time.Second, func() { fired = true })
	cancel()
	cancel() // idempotent
	k.Run()
	if fired {
		t.Fatal("canceled call fired")
	}
}

func TestSystemSchedulerFiresAndCancels(t *testing.T) {
	var s System
	var mu sync.Mutex
	fired := false
	done := make(chan struct{})
	s.Schedule(time.Millisecond, func() {
		mu.Lock()
		fired = true
		mu.Unlock()
		close(done)
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("system scheduler never fired")
	}
	mu.Lock()
	ok := fired
	mu.Unlock()
	if !ok {
		t.Fatal("not fired")
	}
	// Cancel before fire.
	canceled := false
	cancel := s.Schedule(time.Hour, func() { canceled = true })
	cancel()
	if canceled {
		t.Fatal("canceled call ran")
	}
	if s.Now() <= 0 {
		t.Fatal("system Now() not monotonic from start")
	}
}
