// Package clock abstracts time for components that must run identically
// on the simulator's virtual clock and on the wall clock (CoAP message
// layer, gossip rounds, replica timeouts).
package clock

import (
	"sync"
	"time"

	"iiotds/internal/sim"
)

// CancelFunc cancels a scheduled call; safe to call more than once.
type CancelFunc func()

// Scheduler schedules future work and reports a monotonic now.
type Scheduler interface {
	// Schedule runs fn after d.
	Schedule(d time.Duration, fn func()) CancelFunc
	// Now returns a monotonic timestamp.
	Now() time.Duration
}

// System implements Scheduler on the wall clock.
type System struct {
	start time.Time
	once  sync.Once
}

func (s *System) init() { s.once.Do(func() { s.start = time.Now() }) }

// Schedule implements Scheduler using time.AfterFunc.
func (s *System) Schedule(d time.Duration, fn func()) CancelFunc {
	s.init()
	t := time.AfterFunc(d, fn)
	return func() { t.Stop() }
}

// Now implements Scheduler.
func (s *System) Now() time.Duration {
	s.init()
	return time.Since(s.start)
}

// Kernel adapts a simulation kernel to the Scheduler interface.
type Kernel struct {
	K *sim.Kernel
}

// Schedule implements Scheduler.
func (k Kernel) Schedule(d time.Duration, fn func()) CancelFunc {
	e := k.K.Schedule(d, fn)
	return func() { e.Cancel() }
}

// Now implements Scheduler.
func (k Kernel) Now() time.Duration { return k.K.Now() }

var (
	_ Scheduler = (*System)(nil)
	_ Scheduler = Kernel{}
)
