package main

import (
	"testing"
	"time"

	"iiotds/internal/mac"
	"iiotds/internal/radio"
	"iiotds/internal/sim"
)

// BenchmarkSendPathCSMA measures one acknowledged unicast hop: MAC
// encode -> radio -> receive dispatch -> ACK -> sender completion.
func BenchmarkSendPathCSMA(b *testing.B) {
	k := sim.New(1)
	m := radio.NewMedium(k, radio.DefaultParams(), nil)
	macs := make([]*mac.CSMA, 2)
	for i := 0; i < 2; i++ {
		idx := i
		m.Attach(radio.NodeID(i), radio.Position{X: float64(i) * 8}, radio.ReceiverFunc(func(f radio.Frame) {
			macs[idx].RadioReceive(f)
		}))
		macs[i] = mac.NewCSMA(m, radio.NodeID(i), mac.CSMAConfig{})
		macs[i].Start()
	}
	delivered := 0
	macs[0].OnReceive(func(from radio.NodeID, p []byte) { delivered++ })
	payload := make([]byte, 64)
	var ok bool
	done := func(d bool) { ok = d }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok = false
		macs[1].Send(0, payload, done)
		for !ok {
			k.RunFor(5 * time.Millisecond)
		}
	}
	if delivered == 0 {
		b.Fatal("nothing delivered")
	}
}
