// Command iiotbench runs the experiment suite (DESIGN.md §3) and prints
// each experiment's table — the reproduction's equivalent of regenerating
// the paper's figures. With -markdown it emits the EXPERIMENTS.md body;
// with -json it emits a machine-readable report including each table's
// kernel statistics and wall time. -parallel bounds the worker goroutines
// the trial runner fans out over; tables are byte-identical at every
// setting (the runner merges trial results in deterministic order).
//
// Observability hooks:
//
//	-events out.jsonl     enable the flight recorder and dump every
//	                      trial's event stream (deterministic JSONL)
//	-cpuprofile cpu.out   profile the suite itself (pprof)
//	-memprofile mem.out   heap profile on exit
//	-trace sched.out      runtime execution trace (go tool trace)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"time"

	"iiotds/internal/exp"
	"iiotds/internal/trace"
)

// report is the -json output document.
type report struct {
	Scale       string      `json:"scale"`
	Parallel    int         `json:"parallel"`
	GoMaxProcs  int         `json:"gomaxprocs"`
	WallSeconds float64     `json:"wall_seconds"`
	Experiments []expResult `json:"experiments"`
}

type expResult struct {
	*exp.Table
	WallSeconds float64 `json:"wall_seconds"`
}

func main() { os.Exit(run()) }

func run() int {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	only := flag.String("only", "", "comma-separated experiment IDs to run (e.g. E5,E9); empty = all")
	markdown := flag.Bool("markdown", false, "emit markdown (EXPERIMENTS.md body) instead of tables")
	jsonOut := flag.Bool("json", false, "emit a JSON report (tables + kernel stats + wall times)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "trial worker goroutines per experiment (<=1 = sequential)")
	shards := flag.Int("shards", 0, "worker threads the sharded experiments (E15) fan one deployment's stripes across (<=0 = one per stripe); tables are byte-identical at every setting")
	spatial := flag.Bool("spatial", true, "use the cell-grid spatial index for radio fan-out; false selects the brute-force O(N) baseline (identical tables, different wall time)")
	storeShards := flag.Int("store-shards", 0, "shard count P for the storage-tier experiment's (E16) sharded rows (<=0 = default 8); a model parameter — rows change with it, deterministically")
	storeMode := flag.String("store-mode", "", "restrict the storage-tier experiment (E16) to one replication mode (cp or ap); empty = both")
	events := flag.String("events", "", "enable the flight recorder and write every trial's events (JSONL) to this file")
	eventsCap := flag.Int("events-capacity", 1<<16, "flight-recorder ring capacity per trial (giving it explicitly turns recording on even without -events)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	traceFile := flag.String("trace", "", "write a runtime execution trace to this file")
	gwMode := flag.Bool("gateway", false, "run the synthetic observer-swarm gateway benchmark instead of the experiment suite")
	gwObservers := flag.Int("gw-observers", 1_000_000, "gateway swarm: concurrent observer population")
	gwResources := flag.Int("gw-resources", 16, "gateway swarm: observable resources the population spreads over")
	gwRounds := flag.Int("gw-rounds", 4, "gateway swarm: notification fan-out rounds")
	gwPayload := flag.Int("gw-payload", 16, "gateway swarm: representation payload bytes")
	gwQueue := flag.Int("gw-queue", 0, "gateway swarm: per-shard notify queue length (0 = default)")
	gwConfirm := flag.Int("gw-confirm", 0, "gateway swarm: CON cadence (0 = all NON)")
	gwP99Max := flag.Float64("gw-p99-max", 0, "gateway swarm: fail if p99 notification latency exceeds this many ms (0 = no gate)")
	gwOut := flag.String("gw-out", "BENCH_gateway.json", "gateway swarm: result file (- for stdout)")
	gwQuiet := flag.Bool("gw-quiet", false, "gateway swarm: suppress progress lines")
	flag.Parse()

	if *gwMode {
		return runGatewayBench(*gwObservers, *gwResources, *gwRounds, *gwPayload,
			*gwQueue, *gwConfirm, *gwP99Max, *gwOut, *gwQuiet)
	}

	scale := exp.Quick
	switch *scaleFlag {
	case "quick":
	case "full":
		scale = exp.Full
	default:
		fmt.Fprintf(os.Stderr, "iiotbench: unknown scale %q (want quick or full)\n", *scaleFlag)
		return 2
	}

	exp.SetParallelism(*parallel)
	exp.SetShardWorkers(*shards)
	exp.SetSpatialIndex(*spatial)
	if *storeMode != "" && *storeMode != "cp" && *storeMode != "ap" {
		fmt.Fprintf(os.Stderr, "iiotbench: unknown store mode %q (want cp or ap)\n", *storeMode)
		return 2
	}
	exp.SetStoreShards(*storeShards)
	exp.SetStoreMode(*storeMode)

	var runners []exp.Runner
	if *only == "" {
		runners = exp.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			r, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "iiotbench: unknown experiment %q\n", strings.TrimSpace(id))
				return 2
			}
			runners = append(runners, r)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iiotbench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "iiotbench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iiotbench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			fmt.Fprintf(os.Stderr, "iiotbench: %v\n", err)
			return 1
		}
		defer rtrace.Stop()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "iiotbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "iiotbench: %v\n", err)
			}
		}()
	}

	capSet := false
	flag.Visit(func(fl *flag.Flag) {
		if fl.Name == "events-capacity" {
			capSet = true
		}
	})
	if capSet {
		// Record without exporting: the configuration the overhead
		// benchmark uses to isolate the cost of emission itself.
		trace.SetDefaultCapacity(*eventsCap)
	}

	// curID labels the trace sink's output with the experiment being run;
	// the sink itself runs on this goroutine (the runner drains recorders
	// after its workers have joined), so plain variables are safe.
	var curID string
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iiotbench: %v\n", err)
			return 1
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		trace.SetDefaultCapacity(*eventsCap)
		exp.SetTraceSink(func(i int, rec *trace.Recorder) {
			fmt.Fprintf(bw, "{\"experiment\":%q,\"trial\":%d,\"events\":%d,\"dropped\":%d}\n",
				curID, i, rec.Total(), rec.Dropped())
			if err := rec.WriteJSONL(bw, trace.All()); err != nil {
				fmt.Fprintf(os.Stderr, "iiotbench: writing %s: %v\n", *events, err)
			}
		})
		defer exp.SetTraceSink(nil)
	}

	rep := report{Scale: *scaleFlag, Parallel: exp.Parallelism(), GoMaxProcs: runtime.GOMAXPROCS(0)}
	start := time.Now()
	for _, r := range runners {
		curID = r.ID
		t0 := time.Now()
		table := r.Run(scale)
		wall := time.Since(t0).Seconds()
		rep.Experiments = append(rep.Experiments, expResult{Table: table, WallSeconds: wall})
		switch {
		case *jsonOut:
			// Collected; emitted once at the end.
		case *markdown:
			fmt.Println(table.Markdown())
		default:
			fmt.Println(table.String())
			fmt.Printf("(wall time %.1fs)\n\n", wall)
		}
	}
	rep.WallSeconds = time.Since(start).Seconds()

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "iiotbench: %v\n", err)
			return 1
		}
		return 0
	}
	if !*markdown {
		fmt.Printf("ran %d experiments at scale=%s parallel=%d in %.1fs\n",
			len(rep.Experiments), *scaleFlag, exp.Parallelism(), rep.WallSeconds)
	}
	return 0
}
