// Command iiotbench runs the experiment suite (DESIGN.md §3) and prints
// each experiment's table — the reproduction's equivalent of regenerating
// the paper's figures. With -markdown it emits the EXPERIMENTS.md body.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"iiotds/internal/exp"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	only := flag.String("only", "", "comma-separated experiment IDs to run (e.g. E5,E9); empty = all")
	markdown := flag.Bool("markdown", false, "emit markdown (EXPERIMENTS.md body) instead of tables")
	flag.Parse()

	scale := exp.Quick
	switch *scaleFlag {
	case "quick":
	case "full":
		scale = exp.Full
	default:
		fmt.Fprintf(os.Stderr, "iiotbench: unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	start := time.Now()
	ran := 0
	for _, r := range exp.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		ran++
		t0 := time.Now()
		table := r.Run(scale)
		if *markdown {
			fmt.Println(table.Markdown())
		} else {
			fmt.Println(table.String())
			fmt.Printf("(wall time %.1fs)\n\n", time.Since(t0).Seconds())
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "iiotbench: no experiments matched %q\n", *only)
		os.Exit(2)
	}
	if !*markdown {
		fmt.Printf("ran %d experiments at scale=%s in %.1fs\n", ran, *scaleFlag, time.Since(start).Seconds())
	}
}
