// Command iiotbench runs the experiment suite (DESIGN.md §3) and prints
// each experiment's table — the reproduction's equivalent of regenerating
// the paper's figures. With -markdown it emits the EXPERIMENTS.md body;
// with -json it emits a machine-readable report including each table's
// kernel statistics and wall time. -parallel bounds the worker goroutines
// the trial runner fans out over; tables are byte-identical at every
// setting (the runner merges trial results in deterministic order).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"iiotds/internal/exp"
)

// report is the -json output document.
type report struct {
	Scale       string      `json:"scale"`
	Parallel    int         `json:"parallel"`
	GoMaxProcs  int         `json:"gomaxprocs"`
	WallSeconds float64     `json:"wall_seconds"`
	Experiments []expResult `json:"experiments"`
}

type expResult struct {
	*exp.Table
	WallSeconds float64 `json:"wall_seconds"`
}

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	only := flag.String("only", "", "comma-separated experiment IDs to run (e.g. E5,E9); empty = all")
	markdown := flag.Bool("markdown", false, "emit markdown (EXPERIMENTS.md body) instead of tables")
	jsonOut := flag.Bool("json", false, "emit a JSON report (tables + kernel stats + wall times)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "trial worker goroutines per experiment (<=1 = sequential)")
	flag.Parse()

	scale := exp.Quick
	switch *scaleFlag {
	case "quick":
	case "full":
		scale = exp.Full
	default:
		fmt.Fprintf(os.Stderr, "iiotbench: unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}

	exp.SetParallelism(*parallel)

	var runners []exp.Runner
	if *only == "" {
		runners = exp.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			r, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "iiotbench: unknown experiment %q\n", strings.TrimSpace(id))
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	rep := report{Scale: *scaleFlag, Parallel: exp.Parallelism(), GoMaxProcs: runtime.GOMAXPROCS(0)}
	start := time.Now()
	for _, r := range runners {
		t0 := time.Now()
		table := r.Run(scale)
		wall := time.Since(t0).Seconds()
		rep.Experiments = append(rep.Experiments, expResult{Table: table, WallSeconds: wall})
		switch {
		case *jsonOut:
			// Collected; emitted once at the end.
		case *markdown:
			fmt.Println(table.Markdown())
		default:
			fmt.Println(table.String())
			fmt.Printf("(wall time %.1fs)\n\n", wall)
		}
	}
	rep.WallSeconds = time.Since(start).Seconds()

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "iiotbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if !*markdown {
		fmt.Printf("ran %d experiments at scale=%s parallel=%d in %.1fs\n",
			len(rep.Experiments), *scaleFlag, exp.Parallelism(), rep.WallSeconds)
	}
}
