package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"iiotds/internal/gateway"
)

// gatewayBenchDoc is the BENCH_gateway.json document: the swarm result
// plus enough host context to compare runs.
type gatewayBenchDoc struct {
	gateway.SwarmResult
	GoMaxProcs  int    `json:"gomaxprocs"`
	GoVersion   string `json:"go_version"`
	GeneratedAt string `json:"generated_at"`
}

// runGatewayBench drives the synthetic observer swarm against a real
// Gateway (sharded fan-out pool, batched MIDs, zero-alloc NON encoding)
// and writes the measurements to out. It fails — exit status 1 — when a
// registration leaks past the deregister storm, when any notification is
// dropped, or when p99 notification latency exceeds p99Max (0 disables
// the gate).
func runGatewayBench(observers, resources, rounds, payload, queueLen, confirmEvery int, p99Max float64, out string, quiet bool) int {
	logf := func(format string, args ...any) {
		if !quiet {
			fmt.Fprintf(os.Stderr, "iiotbench: "+format+"\n", args...)
		}
	}
	res, err := gateway.RunSwarm(gateway.SwarmConfig{
		Observers:    observers,
		Resources:    resources,
		NotifyRounds: rounds,
		PayloadSize:  payload,
		QueueLen:     queueLen,
		ConfirmEvery: confirmEvery,
		Log:          logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "iiotbench: gateway swarm: %v\n", err)
		return 1
	}

	doc := gatewayBenchDoc{
		SwarmResult: *res,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "iiotbench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "iiotbench: %v\n", err)
		return 1
	} else {
		fmt.Printf("gateway swarm: %s\nwrote %s\n", res, out)
	}

	fail := false
	if res.LeakedObservers != 0 {
		fmt.Fprintf(os.Stderr, "iiotbench: FAIL: %d observers leaked past the deregister storm\n", res.LeakedObservers)
		fail = true
	}
	if res.NotifyDrops != 0 {
		fmt.Fprintf(os.Stderr, "iiotbench: FAIL: %d notifications dropped under backpressure\n", res.NotifyDrops)
		fail = true
	}
	if p99Max > 0 && res.P99ms > p99Max {
		fmt.Fprintf(os.Stderr, "iiotbench: FAIL: p99 notification latency %.1f ms exceeds bound %.1f ms\n", res.P99ms, p99Max)
		fail = true
	}
	if fail {
		return 1
	}
	return 0
}
