// Command iiotsim runs one emulated industrial-IoT deployment scenario
// and reports what happened: DODAG convergence, traffic, energy, and the
// effect of injected faults. It is the workbench for poking at the
// sensing-and-actuation layer without writing a program.
//
// Examples:
//
//	iiotsim -nodes 49 -topology grid -mac csma -duration 5m
//	iiotsim -nodes 25 -mac lpl -wake 500ms -kill 12@60s,7@90s -duration 4m
//	iiotsim -nodes 25 -profiles csma,lpl -duration 5m   # heterogeneous fleet
//	iiotsim -scenario 'scn1;seed=42;topo=grid:n=16;hb=5s;churn=odd:up=25s:minup=20s:down=6s:mindown=5s'
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"iiotds/internal/agg"
	"iiotds/internal/clock"
	"iiotds/internal/core"
	"iiotds/internal/fault"
	"iiotds/internal/lowpan"
	"iiotds/internal/radio"
	"iiotds/internal/scenario"
	"iiotds/internal/sim"
	"iiotds/internal/store"
	"iiotds/internal/trace"
)

// unsetNode marks -trace-node as not given (any real node ID is small).
const unsetNode = 1 << 30

func main() {
	nodes := flag.Int("nodes", 25, "number of nodes (node 0 is the border router)")
	topology := flag.String("topology", "grid", "topology: grid, line, or random")
	spacing := flag.Float64("spacing", 15, "node spacing in meters (grid/line)")
	macKind := flag.String("mac", "csma", "MAC discipline: csma, lpl, or rimac")
	profiles := flag.String("profiles", "", "comma-separated device classes cycled over nodes, e.g. csma,lpl (node 0 gets the first class; overrides -mac)")
	wake := flag.Duration("wake", 500*time.Millisecond, "LPL wake interval")
	duration := flag.Duration("duration", 5*time.Minute, "simulated duration")
	seed := flag.Int64("seed", 1, "simulation seed")
	kills := flag.String("kill", "", "fault schedule, e.g. 12@60s,7@90s (node@time)")
	query := flag.Bool("query", true, "run a continuous AVG(temp) aggregation query")
	epoch := flag.Duration("epoch", 10*time.Second, "aggregation epoch")
	traceOut := flag.String("trace-out", "", "write the deployment's flight-recorder events (JSONL) to this file")
	traceCap := flag.Int("trace-capacity", 1<<16, "flight-recorder ring capacity (with -trace-out)")
	traceNode := flag.Int("trace-node", unsetNode, "restrict -trace-out to one node ID (-1 = network-wide events)")
	traceLayer := flag.String("trace-layer", "", "restrict -trace-out to a comma-separated set of layers: radio, mac, link, rpl, coap, bus, fault, store")
	metricsOut := flag.String("metrics-out", "", "write a Prometheus-text metrics snapshot to this file at the end")
	scenarioSpec := flag.String("scenario", "", "replay a scenario reproducer string (scn1;...) instead of building from flags; exits 1 if an invariant is violated")
	shards := flag.Int("shards", 1, "stripe the deployment over this many simulation kernels (DESIGN.md §9) and run them in parallel; the stripe count is a model parameter, so results are pinned per value")
	storeShards := flag.Int("store-shards", 0, "attach a partitioned time-series store (DESIGN.md §10) at the border router with this many shards and ingest every node's reading each -epoch into it (0 = no storage tier)")
	storeModeFlag := flag.String("store-mode", "ap", "replication mode for -store-shards: ap (CRDT + anti-entropy) or cp (quorum)")
	flag.Parse()

	// The export filter is shared by the flag-built and -scenario paths.
	filter := trace.All()
	if *traceNode != unsetNode {
		filter = filter.ByNode(int32(*traceNode))
	}
	if *traceLayer != "" {
		layers, err := parseLayers(*traceLayer)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iiotsim: %v\n", err)
			os.Exit(2)
		}
		filter = filter.ByLayers(layers...)
	}

	if *scenarioSpec != "" {
		runScenario(*scenarioSpec, *traceOut, filter)
		return
	}

	var positions radio.Topology
	switch *topology {
	case "grid":
		positions = radio.GridTopology(*nodes, *spacing)
	case "line":
		positions = radio.LineTopology(*nodes, *spacing)
	case "random":
		rng := sim.New(*seed).Rand()
		positions = radio.ConnectedRandomTopology(*nodes, 120, 120, 25, rng)
	default:
		fmt.Fprintf(os.Stderr, "iiotsim: unknown topology %q\n", *topology)
		os.Exit(2)
	}

	// One device class per -profiles entry, cycled over the nodes; the
	// plain -mac flag is the one-class special case of the same path.
	classes := []string{*macKind}
	if *profiles != "" {
		classes = strings.Split(*profiles, ",")
		for i := range classes {
			classes[i] = strings.TrimSpace(classes[i])
		}
	}
	stack := core.Stack{Seed: *seed}
	seen := make(map[string]bool)
	for _, class := range classes {
		if seen[class] {
			continue
		}
		seen[class] = true
		p := core.Profile{Name: class}
		switch class {
		case "csma":
			p.MAC = core.MACCSMA
		case "lpl":
			p.MAC = core.MACLPL
			p.LPL.WakeInterval = *wake
		case "rimac":
			p.MAC = core.MACRIMAC
		default:
			fmt.Fprintf(os.Stderr, "iiotsim: unknown device class %q (want csma, lpl, or rimac)\n", class)
			os.Exit(2)
		}
		stack.Profiles = append(stack.Profiles, p)
	}
	for i, pos := range positions {
		stack.Topology = append(stack.Topology, core.NodeSpec{
			Pos: pos, Profile: classes[i%len(classes)],
		})
	}

	if *shards > 1 {
		if *traceOut != "" || *query {
			fmt.Fprintln(os.Stderr, "iiotsim: -shards does not support -trace-out or -query (run with -query=false)")
			os.Exit(2)
		}
		if *storeShards > 0 {
			fmt.Fprintln(os.Stderr, "iiotsim: -store-shards needs the single-kernel engine (drop -shards)")
			os.Exit(2)
		}
		runSharded(stack, *shards, *nodes, *kills, *duration)
		return
	}

	if *traceOut != "" {
		stack.TraceCapacity = *traceCap
	}

	d := core.NewStack(stack)
	if *profiles != "" {
		fmt.Printf("deployment: %d nodes, %s topology, profiles %s (cycled), seed %d\n",
			*nodes, *topology, strings.Join(classes, ","), *seed)
	} else {
		fmt.Printf("deployment: %d nodes, %s topology, %s MAC, seed %d\n",
			*nodes, *topology, *macKind, *seed)
	}

	ok, took := d.RunUntilConverged(5 * time.Minute)
	if !ok {
		fmt.Println("WARNING: DODAG did not fully converge within 5 virtual minutes")
	} else {
		fmt.Printf("DODAG converged in %v (virtual)\n", took)
	}

	// Fault schedule.
	if *kills != "" {
		inj := fault.NewInjector(d.K, d.M, d, fault.NewLedger(d.K.Now()))
		for _, spec := range strings.Split(*kills, ",") {
			parts := strings.SplitN(strings.TrimSpace(spec), "@", 2)
			if len(parts) != 2 {
				fmt.Fprintf(os.Stderr, "iiotsim: bad kill spec %q (want node@time)\n", spec)
				os.Exit(2)
			}
			id, err := strconv.Atoi(parts[0])
			if err != nil || id <= 0 || id >= *nodes {
				fmt.Fprintf(os.Stderr, "iiotsim: bad node in %q\n", spec)
				os.Exit(2)
			}
			at, err := time.ParseDuration(parts[1])
			if err != nil {
				fmt.Fprintf(os.Stderr, "iiotsim: bad time in %q\n", spec)
				os.Exit(2)
			}
			inj.CrashAt(d.K.Now()+at, radio.NodeID(id))
			fmt.Printf("fault: node %d crashes at +%v\n", id, at)
		}
	}

	// Workload.
	if *query {
		for i := 1; i < *nodes; i++ {
			i := i
			d.Nodes[i].SetSampler(func(attr string) (float64, bool) {
				return 20 + float64(i%7) + d.K.Rand().Float64(), true
			})
		}
		d.Root().Agg.OnResult = func(r agg.Result) {
			fmt.Printf("t=%8v  epoch %4d  %s(%s) = %6.2f over %d nodes\n",
				d.K.Now().Truncate(time.Second), r.EpochNo, r.Query.Fn, r.Query.Attr, r.Value, r.Count)
		}
		d.Root().Agg.RunQuery(agg.Query{ID: 1, Fn: agg.Avg, Attr: "temp", Epoch: *epoch, MaxDepth: 12})
	}

	// Storage tier: the border router fronts a partitioned store and every
	// node pushes its reading up the DODAG each epoch (lowpan.ProtoIngest),
	// batched into the shards through one appender — the same pipeline the
	// scenario ingest workload and E16 drive.
	var st *store.Sharded
	var app *store.Appender
	var ingestReps []*sim.Repeater
	var ingestSent, ingestDelivered int
	if *storeShards > 0 {
		mode, err := store.ParseMode(*storeModeFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iiotsim: %v\n", err)
			os.Exit(2)
		}
		if *nodes > 256 {
			fmt.Fprintln(os.Stderr, "iiotsim: -store-shards ingest addresses nodes in one byte (max 256 nodes)")
			os.Exit(2)
		}
		st = store.NewSharded(clock.Kernel{K: d.K}, store.ShardedConfig{
			Shards:  *storeShards,
			Policy:  store.ShardPolicy{Mode: mode, Replicas: 3},
			Seed:    *seed,
			Rec:     d.Trace,
			Metrics: d.Reg,
			Node:    -1,
		})
		defer st.Stop()
		app = st.NewAppender()
		names := make([]string, *nodes)
		for i := range names {
			names[i] = fmt.Sprintf("node/%d/temp", i)
		}
		d.Root().Router.Handle(lowpan.ProtoIngest, func(from radio.NodeID, payload []byte) {
			if len(payload) != 2 || payload[0] != 0x16 {
				return
			}
			i := int(payload[1])
			if i <= 0 || i >= *nodes {
				return
			}
			ingestDelivered++
			app.Append(names[i], store.Point{T: time.Duration(d.K.Now()), V: 20 + float64(i%7)})
		})
		for i := 1; i < *nodes; i++ {
			n := d.Nodes[i]
			ingestReps = append(ingestReps, d.K.Every(*epoch, *epoch/4, func() {
				if !n.Up() {
					return
				}
				ingestSent++
				_ = n.Router.SendUp(lowpan.ProtoIngest, []byte{0x16, byte(n.ID)})
			}))
		}
		ingestReps = append(ingestReps, d.K.Every(*epoch, 0, func() { app.Flush() }))
		fmt.Printf("store: %d shards × 3 replicas, %s mode, fed by %d nodes every %v\n",
			*storeShards, mode, *nodes-1, *epoch)
	}

	d.K.RunFor(*duration)

	// Report.
	fmt.Println("\n--- summary ---")
	joined := 0
	for _, n := range d.Nodes {
		if n.Up() && !n.Router.Partitioned() {
			joined++
		}
	}
	fmt.Printf("nodes joined at end: %d/%d\n", joined, *nodes)
	fmt.Printf("radio: tx=%0.f frames, rx=%0.f frames, collisions=%0.f\n",
		d.Reg.Counter("radio.tx_frames").Value(),
		d.Reg.Counter("radio.rx_frames").Value(),
		d.Reg.Counter("radio.collisions").Value())
	fmt.Printf("routing: %0.f DIOs, %0.f DAOs, %0.f parent switches, %0.f datagrams forwarded\n",
		d.Reg.Counter("rpl.dio_sent").Value(),
		d.Reg.Counter("rpl.dao_sent").Value(),
		d.Reg.Counter("rpl.parent_switches").Value(),
		d.Reg.Counter("rpl.datagrams_forwarded").Value())
	worst, joules := d.M.Energy().MaxTotalJoules()
	fmt.Printf("energy: mean %.2f J/node, worst node %d at %.2f J\n",
		d.M.Energy().MeanTotalJoules(), worst, joules)
	if st != nil {
		// Stop producing, then let in-flight frames land, the final batch
		// ack, and AP anti-entropy finish a round.
		for _, r := range ingestReps {
			r.Stop()
		}
		d.K.RunFor(2 * time.Second)
		app.Flush()
		d.K.RunFor(5 * time.Second)
		fmt.Printf("store: %d/%d readings delivered, %d points ingested, batches acked=%d failed=%d, converged=%v\n",
			ingestDelivered, ingestSent, st.Stats().TotalPoints(), app.Acked(), app.Failed(), st.Converged())
	}

	if *traceOut != "" {
		if err := writeFileWith(*traceOut, func(w *os.File) error {
			return d.Trace.WriteJSONL(w, filter)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "iiotsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d events recorded (%d dropped by the ring), filtered dump in %s\n",
			d.Trace.Total(), d.Trace.Dropped(), *traceOut)
	}
	if *metricsOut != "" {
		if err := writeFileWith(*metricsOut, func(w *os.File) error {
			return d.Reg.WritePrometheus(w)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "iiotsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics: Prometheus-text snapshot in %s\n", *metricsOut)
	}
}

// runSharded runs the flag-built deployment on the sharded multi-kernel
// engine: the plane is cut into vertical slabs, each slab simulated by
// its own kernel, synchronized at lookahead barriers (DESIGN.md §9).
// Faults are injected through the group's control timeline, so -kill
// works across stripe boundaries.
func runSharded(stack core.Stack, stripes, nodes int, kills string, duration time.Duration) {
	sd := core.NewShardedStack(stack, stripes)
	fmt.Printf("engine: %s\n", sd)

	ok, took := sd.RunUntilConverged(5 * time.Minute)
	if !ok {
		fmt.Printf("WARNING: DODAG did not fully converge within 5 virtual minutes (%.1f%% joined)\n",
			100*sd.ConvergedFraction())
	} else {
		fmt.Printf("DODAG converged in %v (virtual)\n", took)
	}

	if kills != "" {
		inj := fault.NewInjector(sd.G, sd, sd, fault.NewLedger(sd.G.Now()))
		for _, spec := range strings.Split(kills, ",") {
			id, at, err := parseKill(spec, nodes)
			if err != nil {
				fmt.Fprintf(os.Stderr, "iiotsim: %v\n", err)
				os.Exit(2)
			}
			inj.CrashAt(sd.G.Now()+at, id)
			fmt.Printf("fault: node %d crashes at +%v\n", id, at)
		}
	}

	sd.G.RunFor(duration)

	fmt.Println("\n--- summary ---")
	joined := 0
	for _, n := range sd.Nodes {
		if n.Up() && !n.Router.Partitioned() {
			joined++
		}
	}
	fmt.Printf("nodes joined at end: %d/%d\n", joined, nodes)
	var tx, rx, coll float64
	for _, sh := range sd.Shards {
		tx += sh.Reg.Counter("radio.tx_frames").Value()
		rx += sh.Reg.Counter("radio.rx_frames").Value()
		coll += sh.Reg.Counter("radio.collisions").Value()
	}
	fmt.Printf("radio (all stripes): tx=%0.f frames, rx=%0.f frames, collisions=%0.f\n", tx, rx, coll)
	fmt.Printf("sync: %d windows, %d cross-stripe handoffs\n", sd.G.Windows(), sd.G.Handoffs())
}

// parseKill parses one node@time fault spec.
func parseKill(spec string, nodes int) (radio.NodeID, sim.Time, error) {
	parts := strings.SplitN(strings.TrimSpace(spec), "@", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad kill spec %q (want node@time)", spec)
	}
	id, err := strconv.Atoi(parts[0])
	if err != nil || id <= 0 || id >= nodes {
		return 0, 0, fmt.Errorf("bad node in %q", spec)
	}
	at, err := time.ParseDuration(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("bad time in %q", spec)
	}
	return radio.NodeID(id), at, nil
}

// runScenario replays one scenario reproducer string — the format the
// property harness (internal/scenario) stamps on every run and shrinks
// failures down to — and reports the verdict. The run is fully
// deterministic, so a reproducer pasted from a CI failure replays the
// exact same fault schedule and violations locally. With -trace-out the
// run's flight-recorder stream is exported (filtered) for iiottrace.
func runScenario(line, traceOut string, filter trace.Filter) {
	spec, err := scenario.Parse(line)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iiotsim: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("scenario: %s\n", scenario.Format(spec))
	res := scenario.Run(spec, nil)
	fmt.Printf("converged: %v (in %v)\n", res.Converged, res.ConvergeIn)
	fmt.Printf("churn: %d crashes, %d recoveries\n", res.Crashes, res.Recoveries)
	fmt.Printf("workload: probes %d ok / %d failed, pushes %d/%d delivered, %d agg epochs, heartbeats %d ok / %d sent\n",
		res.ProbeOK, res.ProbeFail, res.PushDelivered, res.Pushes, res.AggEpochs, res.HeartbeatOK, res.Heartbeats)
	if res.IngestSent > 0 {
		fmt.Printf("store: %d/%d readings delivered, batches acked=%d failed=%d, converged=%v\n",
			res.IngestDelivered, res.IngestSent, res.IngestAcked, res.IngestFailed, res.StoreConverged)
	}
	if traceOut != "" {
		if err := writeFileWith(traceOut, func(w *os.File) error {
			return res.Trace.WriteJSONL(w, filter)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "iiotsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d events recorded (%d dropped by the ring), filtered dump in %s\n",
			res.Trace.Total(), res.Trace.Dropped(), traceOut)
	}
	if !res.Failed() {
		fmt.Println("PASS: all invariants held")
		return
	}
	fmt.Printf("FAIL: %d invariant violation(s)\n", len(res.Violations))
	for _, v := range res.Violations {
		fmt.Printf("  %s\n", v)
	}
	os.Exit(1)
}

// parseLayers parses a comma-separated -trace-layer value ("mac,rpl")
// into trace layers.
func parseLayers(spec string) ([]trace.Layer, error) {
	var layers []trace.Layer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		l, ok := trace.ParseLayer(name)
		if !ok {
			return nil, fmt.Errorf("unknown layer %q (want radio, mac, link, rpl, coap, bus, fault, or store)", name)
		}
		layers = append(layers, l)
	}
	if len(layers) == 0 {
		return nil, fmt.Errorf("empty -trace-layer value %q", spec)
	}
	return layers, nil
}

// writeFileWith creates path, hands it to fn, and closes it, reporting
// the first error.
func writeFileWith(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
