// Command iiottrace analyses a flight-recorder dump (the JSONL written
// by iiotsim -trace-out) through the lens of packet journeys: the
// correlation IDs every layer stamps on its events let the tool fold
// the interleaved stream back into per-packet flight paths — hop by
// hop, retry by retry — and answer the operator questions a raw event
// log cannot: where did this packet spend its time, which exchanges
// were slow, and what killed the ones that died.
//
// Examples:
//
//	iiotsim -nodes 25 -duration 2m -trace-out trace.jsonl
//	iiottrace trace.jsonl                  # journey summary + aggregates
//	iiottrace -slowest 10 trace.jsonl      # waterfalls of the 10 slowest
//	iiottrace -journey 42 trace.jsonl      # one journey in full
//	iiottrace -failed trace.jsonl          # post-mortems of failed journeys
//	iiottrace -check -min-coverage 0.99 t.jsonl  # CI gate on journey coverage
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"iiotds/internal/metrics"
	"iiotds/internal/trace"
)

func main() {
	journeyID := flag.Uint64("journey", 0, "print the waterfall of one journey ID")
	slowest := flag.Int("slowest", 0, "print waterfalls of the N slowest journeys")
	failed := flag.Bool("failed", false, "print post-mortems of every journey that did not end delivered")
	check := flag.Bool("check", false, "exit 1 unless CoAP journey coverage is at least -min-coverage")
	minCoverage := flag.Float64("min-coverage", 0.99, "minimum fraction of delivered CoAP exchanges that must reconstruct into complete journeys (with -check)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: iiottrace [flags] <trace.jsonl>  (\"-\" reads stdin)\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	events, err := readTrace(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "iiottrace: %v\n", err)
		os.Exit(1)
	}
	journeys := trace.Journeys(events)

	switch {
	case *check:
		os.Exit(runCheck(events, *minCoverage))
	case *journeyID != 0:
		for _, j := range journeys {
			if j.ID == *journeyID {
				printWaterfall(j)
				return
			}
		}
		fmt.Fprintf(os.Stderr, "iiottrace: no journey %d in trace (%d journeys present)\n",
			*journeyID, len(journeys))
		os.Exit(1)
	case *slowest > 0:
		sorted := append([]*trace.Journey(nil), journeys...)
		sort.SliceStable(sorted, func(a, b int) bool {
			return sorted[a].Duration() > sorted[b].Duration()
		})
		if len(sorted) > *slowest {
			sorted = sorted[:*slowest]
		}
		fmt.Printf("%d slowest of %d journeys:\n\n", len(sorted), len(journeys))
		for _, j := range sorted {
			printWaterfall(j)
			fmt.Println()
		}
	case *failed:
		n := 0
		for _, j := range journeys {
			if j.Outcome == trace.OutcomeDelivered {
				continue
			}
			n++
			printWaterfall(j)
			fmt.Println()
		}
		fmt.Printf("%d of %d journeys did not end delivered\n", n, len(journeys))
	default:
		printSummary(events, journeys)
	}
}

// readTrace loads a JSONL dump from path ("-" = stdin).
func readTrace(path string) ([]trace.Event, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return trace.ReadJSONL(r)
}

// runCheck is the CI gate: coverage of delivered CoAP exchanges by
// complete journeys must meet the threshold. No exchanges at all is a
// vacuous pass (scenarios without a CoAP workload).
func runCheck(events []trace.Event, min float64) int {
	cov, tot := trace.CoAPCoverage(events)
	if tot == 0 {
		fmt.Println("coverage: no delivered CoAP exchanges in trace (vacuous pass)")
		return 0
	}
	frac := float64(cov) / float64(tot)
	fmt.Printf("coverage: %d/%d delivered CoAP exchanges reconstruct completely (%.2f%%, threshold %.2f%%)\n",
		cov, tot, 100*frac, 100*min)
	if frac < min {
		fmt.Println("FAIL: journey coverage below threshold")
		return 1
	}
	fmt.Println("PASS")
	return 0
}

// printSummary reports the whole trace: journey census by outcome,
// aggregate hop/latency statistics, and CoAP coverage.
func printSummary(events []trace.Event, journeys []*trace.Journey) {
	reg := metrics.NewRegistry()
	trace.ObserveJourneys(journeys, reg)

	byOutcome := make(map[trace.Outcome]int)
	for _, j := range journeys {
		byOutcome[j.Outcome]++
	}
	var parts []string
	for o := trace.OutcomeIncomplete; o <= trace.OutcomeCoAPTimeout; o++ {
		if n := byOutcome[o]; n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, o))
		}
	}
	fmt.Printf("trace: %d events, %d journeys (%s)\n",
		len(events), len(journeys), strings.Join(parts, ", "))

	if cov, tot := trace.CoAPCoverage(events); tot > 0 {
		fmt.Printf("coap: %d/%d delivered exchanges reconstruct completely (%.1f%%)\n",
			cov, tot, 100*float64(cov)/float64(tot))
	}
	if len(journeys) == 0 {
		fmt.Println("no journeys in trace (events predate journey IDs, or carry only control traffic)")
		return
	}
	hops := reg.Histogram("journey.hops").Stats()
	fmt.Printf("hops:         mean %.1f  p50 %.0f  p99 %.0f  max %.0f\n",
		hops.Mean, hops.P50, hops.P99, hops.Max)
	printDurStats("duration:    ", reg.Histogram("journey.duration_seconds").Stats())
	printDurStats("hop latency: ", reg.Histogram("journey.hop_latency_seconds").Stats())
	retries := reg.Histogram("journey.retries").Stats()
	fmt.Printf("retries:      mean %.2f  max %.0f\n", retries.Mean, retries.Max)

	// Fleet-wide layer residency: where packets spend their time.
	layerTotals := make([]time.Duration, len(trace.Journey{}.LayerNanos))
	var total time.Duration
	for _, j := range journeys {
		for l, d := range j.LayerNanos {
			layerTotals[l] += d
			total += d
		}
	}
	if total > 0 {
		fmt.Printf("time by layer:%s\n", layerBreakdown(layerTotals, total))
	}
}

func printDurStats(label string, s metrics.HistStats) {
	if s.Count == 0 {
		return
	}
	sec := func(v float64) time.Duration { return time.Duration(v * float64(time.Second)) }
	fmt.Printf("%s mean %v  p50 %v  p99 %v  max %v\n",
		label, sec(s.Mean).Round(time.Microsecond), sec(s.P50).Round(time.Microsecond),
		sec(s.P99).Round(time.Microsecond), sec(s.Max).Round(time.Microsecond))
}

// layerBreakdown renders per-layer durations as " mac 62% (1.2s)" terms,
// largest first, dropping layers under 1%.
func layerBreakdown(totals []time.Duration, sum time.Duration) string {
	type item struct {
		l trace.Layer
		d time.Duration
	}
	var items []item
	for l, d := range totals {
		if d > 0 {
			items = append(items, item{trace.Layer(l), d})
		}
	}
	sort.SliceStable(items, func(a, b int) bool { return items[a].d > items[b].d })
	var sb strings.Builder
	for _, it := range items {
		pct := 100 * float64(it.d) / float64(sum)
		if pct < 1 {
			break
		}
		fmt.Fprintf(&sb, "  %s %.0f%%", it.l, pct)
	}
	return sb.String()
}

// printWaterfall renders one journey: a header with its vital signs, the
// per-layer latency breakdown, the hop sequence, and every event on a
// time-scaled gutter.
func printWaterfall(j *trace.Journey) {
	fmt.Printf("journey %d  %s  %d hops  %d retries  %d backoffs  %d losses  %v\n",
		j.ID, j.Outcome, len(j.Hops), j.Retries, j.Backoffs, j.Losses,
		j.Duration().Round(time.Microsecond))
	if b := layerBreakdown(j.LayerNanos[:], j.Duration()); b != "" {
		fmt.Printf("  layers:%s\n", b)
	}
	if len(j.Hops) > 0 {
		var sb strings.Builder
		for i, h := range j.Hops {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%d→%d", h.From, h.To)
			if h.Took > 0 {
				fmt.Fprintf(&sb, " (%v)", h.Took.Round(time.Microsecond))
			}
		}
		fmt.Printf("  path:   %s\n", sb.String())
	}
	const width = 32
	dur := j.Duration()
	for i, e := range j.Events {
		offset := e.At - j.Start
		// The gutter bar spans this event to the next — the span the
		// event's layer "held" the packet.
		var gutter [width]byte
		for k := range gutter {
			gutter[k] = ' '
		}
		lo := scale(offset, dur, width)
		hi := lo
		if i+1 < len(j.Events) {
			hi = scale(j.Events[i+1].At-j.Start, dur, width)
		}
		for k := lo; k <= hi && k < width; k++ {
			gutter[k] = '#'
		}
		fmt.Printf("  %12s  [%s]  node %-4d %s/%s  a=%d b=%d",
			"+"+offset.Round(time.Microsecond).String(), gutter[:],
			e.Node, e.Type.Layer(), e.Type, e.A, e.B)
		if e.F != 0 {
			fmt.Printf(" f=%g", e.F)
		}
		fmt.Println()
	}
}

// scale maps an offset within [0, dur] to a column in [0, width).
func scale(off, dur time.Duration, width int) int {
	if dur <= 0 {
		return 0
	}
	c := int(int64(off) * int64(width-1) / int64(dur))
	if c < 0 {
		c = 0
	}
	if c >= width {
		c = width - 1
	}
	return c
}
