// Command iiotgw demonstrates that the middleware runs over real
// networks, not only the emulation: it serves the gateway's CoAP
// resources on a real UDP socket (device registry, canonical
// observations via protocol adapters) and, with -probe, acts as a CoAP
// client against another gateway instance.
//
//	iiotgw -listen 127.0.0.1:5683             # serve
//	iiotgw -probe 127.0.0.1:5683              # discover + read resources
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"time"

	"iiotds/internal/adapter"
	"iiotds/internal/coap"
	"iiotds/internal/metrics"
	"iiotds/internal/registry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:5683", "UDP address to serve CoAP on")
	probe := flag.String("probe", "", "act as client: discover and read a gateway at this address")
	httpAddr := flag.String("http", "", "serve /metrics (Prometheus text) and /debug/vars (expvar) on this TCP address")
	pprofOn := flag.Bool("pprof", false, "also serve /debug/pprof/ on the -http address")
	flag.Parse()

	if *probe != "" {
		runProbe(*probe)
		return
	}
	runGateway(*listen, *httpAddr, *pprofOn)
}

// serveObservability exposes the gateway's labeled metrics registry over
// HTTP: Prometheus text on /metrics, the same snapshot as JSON through
// expvar on /debug/vars, and — only when asked — the pprof profiling
// endpoints.
func serveObservability(addr string, reg *metrics.Registry, withPprof bool) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	expvar.Publish("iiot", expvar.Func(reg.ExpvarFunc()))
	mux.Handle("/debug/vars", expvar.Handler())
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			fmt.Fprintf(os.Stderr, "iiotgw: http: %v\n", err)
		}
	}()
}

// runGateway serves the middleware over a real socket: an emulated legacy
// Modbus device is exposed through its adapter as canonical resources.
func runGateway(listen, httpAddr string, pprofOn bool) {
	tr, err := coap.NewUDPTransport(listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iiotgw: %v\n", err)
		os.Exit(1)
	}
	conn := coap.NewConn(tr, &coap.SystemScheduler{}, coap.ConnConfig{})
	defer conn.Close()

	mreg := metrics.NewRegistry()
	requests := func(resource string) *metrics.Counter {
		return mreg.CounterWith("gw.requests", metrics.L("resource", resource))
	}
	if httpAddr != "" {
		serveObservability(httpAddr, mreg, pprofOn)
		fmt.Printf("iiotgw: metrics on http://%s/metrics (pprof: %v)\n", httpAddr, pprofOn)
	}

	// One legacy device behind its adapter.
	mb := adapter.NewModbusAdapter()
	mbMap := adapter.ModbusMap{
		"temp":     {Register: 100, Scale: 100, Unit: "C"},
		"setpoint": {Register: 101, Scale: 100, Unit: "C", Writable: true},
	}
	mb.RegisterModel("plc-7", mbMap)
	dev := &registry.Device{
		ID: "press-1", Vendor: "Siematic", Model: "plc-7",
		Protocol: adapter.ProtocolModbus,
		Caps: []registry.Capability{
			{Name: "temp", Kind: registry.KindSensor, Unit: "C"},
			{Name: "setpoint", Kind: registry.KindActuator, Unit: "C"},
		},
	}
	emu := adapter.NewModbusEmulator(dev, mbMap)
	emu.SetState("temp", 36.5)
	emu.SetState("setpoint", 40)
	reg := registry.New()
	if err := reg.Register(dev); err != nil {
		fmt.Fprintf(os.Stderr, "iiotgw: %v\n", err)
		os.Exit(1)
	}

	srv := coap.NewServer()
	srv.Resource("registry/devices").ResourceType("iiot.registry").Get(
		func(string, *coap.Message) *coap.Message {
			requests("registry").Inc()
			var sb strings.Builder
			for _, d := range reg.All() {
				fmt.Fprintf(&sb, "%s vendor=%s model=%s proto=%s\n", d.ID, d.Vendor, d.Model, d.Protocol)
			}
			return coap.TextResponse(sb.String())
		})
	srv.Resource("devices/press-1/temp").ResourceType("iiot.sensor").Observable().Get(
		func(string, *coap.Message) *coap.Message {
			requests("temp").Inc()
			obs, err := mb.Decode(dev, emu.Frame(), time.Duration(time.Now().UnixNano()))
			if err != nil {
				return coap.ErrorResponse(coap.CodeInternalServerError, err.Error())
			}
			for _, o := range obs {
				if o.Cap == "temp" {
					return coap.TextResponse(fmt.Sprintf("%.2f", o.Value))
				}
			}
			return coap.ErrorResponse(coap.CodeNotFound, "no temp observation")
		})
	srv.Resource("devices/press-1/setpoint").ResourceType("iiot.actuator").Put(
		func(_ string, req *coap.Message) *coap.Message {
			requests("setpoint").Inc()
			var v float64
			if _, err := fmt.Sscanf(string(req.Payload), "%f", &v); err != nil {
				return coap.ErrorResponse(coap.CodeBadRequest, "want a number")
			}
			raw, err := mb.EncodeCommand(dev, registry.Command{Device: dev.ID, Cap: "setpoint", Value: v})
			if err != nil {
				return coap.ErrorResponse(coap.CodeBadRequest, err.Error())
			}
			if err := emu.Apply(raw); err != nil {
				return coap.ErrorResponse(coap.CodeInternalServerError, err.Error())
			}
			return &coap.Message{Code: coap.CodeChanged}
		})
	conn.Serve(srv)

	fmt.Printf("iiotgw: CoAP gateway on %s (resources: /.well-known/core)\n", tr.LocalAddr())
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	fmt.Println("iiotgw: shutting down")
}

// runProbe exercises a remote gateway like any standards-based CoAP
// client would.
func runProbe(addr string) {
	tr, err := coap.NewUDPTransport("127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "iiotgw: %v\n", err)
		os.Exit(1)
	}
	conn := coap.NewConn(tr, &coap.SystemScheduler{}, coap.ConnConfig{})
	defer conn.Close()

	get := func(path string) string {
		done := make(chan string, 1)
		conn.Get(addr, path, func(m *coap.Message, err error) {
			if err != nil {
				done <- "error: " + err.Error()
				return
			}
			done <- fmt.Sprintf("[%s] %s", m.Code, m.Payload)
		})
		select {
		case s := <-done:
			return s
		case <-time.After(10 * time.Second):
			return "timeout"
		}
	}

	fmt.Println("discovery:", get(".well-known/core"))
	fmt.Println("registry: ", get("registry/devices"))
	fmt.Println("temp:     ", get("devices/press-1/temp"))

	done := make(chan string, 1)
	conn.Put(addr, "devices/press-1/setpoint", coap.FormatText, []byte("42.5"),
		func(m *coap.Message, err error) {
			if err != nil {
				done <- "error: " + err.Error()
				return
			}
			done <- m.Code.String()
		})
	select {
	case s := <-done:
		fmt.Println("setpoint PUT:", s)
	case <-time.After(10 * time.Second):
		fmt.Println("setpoint PUT: timeout")
	}
}
