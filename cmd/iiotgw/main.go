// Command iiotgw demonstrates that the middleware runs over real
// networks, not only the emulation: it serves the gateway's CoAP
// resources on a real UDP socket (device registry, canonical
// observations via protocol adapters) and, with -probe, acts as a CoAP
// client against another gateway instance.
//
// The observe side runs through internal/gateway: a sampler publishes
// the legacy device's readings into the gateway, which fans them out to
// (potentially very large) observer populations via the sharded notify
// pool, coalesces bursts, enforces the per-resource observer cap with
// 5.03 + Max-Age, and serves HTTP/JSON reads from its last-value cache.
//
//	iiotgw -listen 127.0.0.1:5683             # serve
//	iiotgw -http 127.0.0.1:8080               # + metrics and /v1 read path
//	iiotgw -probe 127.0.0.1:5683              # discover + read resources
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"time"

	"iiotds/internal/adapter"
	"iiotds/internal/coap"
	"iiotds/internal/gateway"
	"iiotds/internal/metrics"
	"iiotds/internal/registry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:5683", "UDP address to serve CoAP on")
	probe := flag.String("probe", "", "act as client: discover and read a gateway at this address")
	httpAddr := flag.String("http", "", "serve /metrics, /debug/vars, and the /v1 JSON read path on this TCP address")
	pprofOn := flag.Bool("pprof", false, "also serve /debug/pprof/ on the -http address")
	obsMax := flag.Int("observers-max", 100000, "observer cap per resource (0 = protocol default)")
	coalesce := flag.Duration("coalesce", 0, "minimum interval between notification pushes per resource (0 = push every sample)")
	conEvery := flag.Int("con-every", 0, "make every n-th notification confirmable (0 = default 8, negative = never)")
	queueLen := flag.Int("notify-queue", 0, "per-shard notify queue length (0 = default)")
	sample := flag.Duration("sample", time.Second, "device sampling interval")
	flag.Parse()

	if *probe != "" {
		runProbe(*probe)
		return
	}
	runGateway(gwOptions{
		listen:   *listen,
		httpAddr: *httpAddr,
		pprofOn:  *pprofOn,
		obsMax:   *obsMax,
		coalesce: *coalesce,
		conEvery: *conEvery,
		queueLen: *queueLen,
		sample:   *sample,
	})
}

type gwOptions struct {
	listen   string
	httpAddr string
	pprofOn  bool
	obsMax   int
	coalesce time.Duration
	conEvery int
	queueLen int
	sample   time.Duration
}

// observabilityMux builds the HTTP surface: Prometheus text on /metrics,
// the same snapshot as JSON through expvar on /debug/vars, the gateway's
// /v1 read path, and — only when asked — the pprof endpoints. Safe to
// call more than once per process: the expvar publication (which panics
// on duplicate names) is guarded.
func observabilityMux(reg *metrics.Registry, gw *gateway.Gateway, withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	if expvar.Get("iiot") == nil {
		expvar.Publish("iiot", expvar.Func(reg.ExpvarFunc()))
	}
	mux.Handle("/debug/vars", expvar.Handler())
	if gw != nil {
		mux.Handle("/v1/", gw.HTTPHandler())
	}
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// serveObservability runs the mux on an http.Server with timeouts (a
// stalled scrape must not pin a goroutine forever).
func serveObservability(addr string, mux *http.ServeMux) {
	s := gateway.NewHTTPServer(addr, mux)
	go func() {
		if err := s.ListenAndServe(); err != nil {
			fmt.Fprintf(os.Stderr, "iiotgw: http: %v\n", err)
		}
	}()
}

// runGateway serves the middleware over a real socket: an emulated legacy
// Modbus device is sampled into the gateway, which owns the fan-out.
func runGateway(o gwOptions) {
	tr, err := coap.NewUDPTransport(o.listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iiotgw: %v\n", err)
		os.Exit(1)
	}
	conn := coap.NewConn(tr, &coap.SystemScheduler{}, coap.ConnConfig{})
	defer conn.Close()

	mreg := metrics.NewRegistry()
	requests := func(resource string) *metrics.Counter {
		return mreg.CounterWith("gw.requests", metrics.L("resource", resource))
	}

	gw := gateway.New(conn, gateway.Config{
		MaxObservers: o.obsMax,
		RejectMaxAge: uint32((o.sample + time.Second - 1) / time.Second),
		Coalesce:     o.coalesce,
		ConfirmEvery: o.conEvery,
		QueueLen:     o.queueLen,
		Metrics:      mreg,
	})
	defer gw.Close()

	// One legacy device behind its adapter.
	mb := adapter.NewModbusAdapter()
	mbMap := adapter.ModbusMap{
		"temp":     {Register: 100, Scale: 100, Unit: "C"},
		"setpoint": {Register: 101, Scale: 100, Unit: "C", Writable: true},
	}
	mb.RegisterModel("plc-7", mbMap)
	dev := &registry.Device{
		ID: "press-1", Vendor: "Siematic", Model: "plc-7",
		Protocol: adapter.ProtocolModbus,
		Caps: []registry.Capability{
			{Name: "temp", Kind: registry.KindSensor, Unit: "C"},
			{Name: "setpoint", Kind: registry.KindActuator, Unit: "C"},
		},
	}
	emu := adapter.NewModbusEmulator(dev, mbMap)
	emu.SetState("temp", 36.5)
	emu.SetState("setpoint", 40)
	reg := registry.New()
	if err := reg.Register(dev); err != nil {
		fmt.Fprintf(os.Stderr, "iiotgw: %v\n", err)
		os.Exit(1)
	}

	readTemp := func() (string, error) {
		obs, err := mb.Decode(dev, emu.Frame(), time.Duration(time.Now().UnixNano()))
		if err != nil {
			return "", err
		}
		for _, o := range obs {
			if o.Cap == "temp" {
				return fmt.Sprintf("%.2f", o.Value), nil
			}
		}
		return "", fmt.Errorf("no temp observation")
	}

	srv := gw.Server()
	srv.Resource("registry/devices").ResourceType("iiot.registry").Get(
		func(string, *coap.Message) *coap.Message {
			requests("registry").Inc()
			var sb strings.Builder
			for _, d := range reg.All() {
				fmt.Fprintf(&sb, "%s vendor=%s model=%s proto=%s\n", d.ID, d.Vendor, d.Model, d.Protocol)
			}
			return coap.TextResponse(sb.String())
		})
	// The observable sensor serves from the last-value cache; until the
	// first sample lands, the fallback reads the device synchronously.
	gw.AddResource("devices/press-1/temp", "iiot.sensor",
		func(string, *coap.Message) *coap.Message {
			requests("temp").Inc()
			v, err := readTemp()
			if err != nil {
				return coap.ErrorResponse(coap.CodeInternalServerError, err.Error())
			}
			return coap.TextResponse(v)
		})
	srv.Resource("devices/press-1/setpoint").ResourceType("iiot.actuator").Put(
		func(_ string, req *coap.Message) *coap.Message {
			requests("setpoint").Inc()
			var v float64
			if _, err := fmt.Sscanf(string(req.Payload), "%f", &v); err != nil {
				return coap.ErrorResponse(coap.CodeBadRequest, "want a number")
			}
			raw, err := mb.EncodeCommand(dev, registry.Command{Device: dev.ID, Cap: "setpoint", Value: v})
			if err != nil {
				return coap.ErrorResponse(coap.CodeBadRequest, err.Error())
			}
			if err := emu.Apply(raw); err != nil {
				return coap.ErrorResponse(coap.CodeInternalServerError, err.Error())
			}
			return &coap.Message{Code: coap.CodeChanged}
		})

	if o.httpAddr != "" {
		serveObservability(o.httpAddr, observabilityMux(mreg, gw, o.pprofOn))
		fmt.Printf("iiotgw: metrics on http://%s/metrics, reads on http://%s/v1/last/... (pprof: %v)\n",
			o.httpAddr, o.httpAddr, o.pprofOn)
	}

	// Sampler: poll the legacy device and publish into the gateway —
	// observers and the HTTP read path both feed from these pushes.
	observers := mreg.Gauge("gw.observers")
	sampleErrs := mreg.Counter("gw.sample_errors")
	stop := make(chan struct{})
	go func() {
		tick := time.NewTicker(o.sample)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				v, err := readTemp()
				if err != nil {
					sampleErrs.Inc()
					continue
				}
				gw.Publish("devices/press-1/temp", coap.FormatText, []byte(v))
				observers.Set(float64(gw.Stats().Observers))
			}
		}
	}()

	fmt.Printf("iiotgw: CoAP gateway on %s (resources: /.well-known/core; observer cap %d/resource, coalesce %v)\n",
		tr.LocalAddr(), o.obsMax, o.coalesce)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	close(stop)
	fmt.Println("iiotgw: shutting down:", gw.Stats())
}

// runProbe exercises a remote gateway like any standards-based CoAP
// client would.
func runProbe(addr string) {
	tr, err := coap.NewUDPTransport("127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "iiotgw: %v\n", err)
		os.Exit(1)
	}
	conn := coap.NewConn(tr, &coap.SystemScheduler{}, coap.ConnConfig{})
	defer conn.Close()

	get := func(path string) string {
		done := make(chan string, 1)
		conn.Get(addr, path, func(m *coap.Message, err error) {
			if err != nil {
				done <- "error: " + err.Error()
				return
			}
			done <- fmt.Sprintf("[%s] %s", m.Code, m.Payload)
		})
		select {
		case s := <-done:
			return s
		case <-time.After(10 * time.Second):
			return "timeout"
		}
	}

	fmt.Println("discovery:", get(".well-known/core"))
	fmt.Println("registry: ", get("registry/devices"))
	fmt.Println("temp:     ", get("devices/press-1/temp"))

	done := make(chan string, 1)
	conn.Put(addr, "devices/press-1/setpoint", coap.FormatText, []byte("42.5"),
		func(m *coap.Message, err error) {
			if err != nil {
				done <- "error: " + err.Error()
				return
			}
			done <- m.Code.String()
		})
	select {
	case s := <-done:
		fmt.Println("setpoint PUT:", s)
	case <-time.After(10 * time.Second):
		fmt.Println("setpoint PUT: timeout")
	}
}
