// Command lintevents enforces the observability discipline of the
// protocol layers: emulated-stack packages must report what happened
// through the flight recorder (internal/trace) and the labeled metrics
// registry (internal/metrics), never by printing. A fmt.Print*/println
// call in a protocol layer is invisible to the deterministic trace,
// unfilterable, and corrupts the byte-identical output contract of the
// experiment runner — so CI fails on it.
//
//	lintevents            # lint the default protocol-layer packages
//	lintevents ./foo ...  # lint the named directories instead
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// protocolLayers are the packages whose code runs inside the emulated
// stack. Test files are exempt (tests may print diagnostics).
var protocolLayers = []string{
	"internal/netbuf",
	"internal/radio",
	"internal/mac",
	"internal/link",
	"internal/lowpan",
	"internal/rpl",
	"internal/coap",
	"internal/bus",
	"internal/agg",
	"internal/trace",
	"internal/fault",
	"internal/core",
	"internal/scenario",
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = protocolLayers
	}
	bad := 0
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lintevents: %v\n", err)
			os.Exit(2)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			bad += lintFile(filepath.Join(dir, name))
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lintevents: %d print call(s) in protocol layers — emit trace events or metrics instead\n", bad)
		os.Exit(1)
	}
}

// lintFile reports every fmt.Print*/print/println call in one source
// file and returns how many it found.
func lintFile(path string) int {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lintevents: %v\n", err)
		os.Exit(2)
	}
	bad := 0
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fn := call.Fun.(type) {
		case *ast.SelectorExpr:
			// fmt.Print, fmt.Printf, fmt.Println (not Sprintf/Fprintf:
			// formatting into values or explicit writers is fine).
			if pkg, ok := fn.X.(*ast.Ident); ok && pkg.Name == "fmt" &&
				strings.HasPrefix(fn.Sel.Name, "Print") {
				name = "fmt." + fn.Sel.Name
			}
		case *ast.Ident:
			// The predeclared print/println builtins.
			if fn.Name == "print" || fn.Name == "println" {
				name = fn.Name
			}
		}
		if name != "" {
			fmt.Printf("%s: %s\n", fset.Position(call.Pos()), name)
			bad++
		}
		return true
	})
	return bad
}
