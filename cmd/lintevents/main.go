// Command lintevents enforces the observability discipline of the
// protocol layers: emulated-stack packages must report what happened
// through the flight recorder (internal/trace) and the labeled metrics
// registry (internal/metrics), never by printing. A fmt.Print*/println
// call in a protocol layer is invisible to the deterministic trace,
// unfilterable, and corrupts the byte-identical output contract of the
// experiment runner — so CI fails on it.
//
// It also guards the journey-correlation contract: an Emit of a
// packet-tied (data-plane) event type that passes a literal 0 journey
// ID from a function with a packet buffer in scope has almost certainly
// dropped the correlation ID — the regression that silently punches
// holes in reconstructed journeys. Control-plane types (beacons, DIOs,
// bus traffic, faults) legitimately carry journey 0 and are exempt.
//
//	lintevents            # lint the default protocol-layer packages
//	lintevents ./foo ...  # lint the named directories instead
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// protocolLayers are the packages whose code runs inside the emulated
// stack. Test files are exempt (tests may print diagnostics).
var protocolLayers = []string{
	"internal/netbuf",
	"internal/radio",
	"internal/mac",
	"internal/link",
	"internal/lowpan",
	"internal/rpl",
	"internal/coap",
	"internal/bus",
	"internal/agg",
	"internal/trace",
	"internal/fault",
	"internal/core",
	"internal/scenario",
	"internal/gossip",
	"internal/store",
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = protocolLayers
	}
	bad := 0
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lintevents: %v\n", err)
			os.Exit(2)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			bad += lintFile(filepath.Join(dir, name))
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lintevents: %d violation(s) in protocol layers\n", bad)
		os.Exit(1)
	}
}

// journeyDataTypes are the trace event types tied to a specific packet:
// an Emit of one of these must thread the packet's journey ID through,
// never a literal 0. The control-plane types (wakeups, beacons, DIOs,
// DAOs, RNFD, bus, fault) are journey-less by design and absent here.
var journeyDataTypes = map[string]bool{
	"RadioTx": true, "RadioDeliver": true, "RadioLoss": true, "RadioCollision": true,
	"MACTx": true, "MACBackoff": true, "MACRetry": true, "MACTxFail": true, "MACStrobe": true,
	"LinkAck": true, "LinkDrop": true,
	"RPLNoRoute": true, "RPLForward": true, "RPLDeliver": true,
	"CoAPRequest": true, "CoAPResponse": true, "CoAPRetransmit": true, "CoAPTimeout": true,
}

// hasBufferInScope reports whether fn gives any evidence of holding a
// packet buffer: a *netbuf.Buffer (or in-package *Buffer) parameter, a
// .buf / .Payload selector access (MAC queue items, radio frames,
// 6LoWPAN datagrams), or a buffer obtained from a pool/constructor.
func hasBufferInScope(fn *ast.FuncDecl) bool {
	isBufferType := func(e ast.Expr) bool {
		star, ok := e.(*ast.StarExpr)
		if !ok {
			return false
		}
		switch t := star.X.(type) {
		case *ast.SelectorExpr:
			return t.Sel.Name == "Buffer"
		case *ast.Ident:
			return t.Name == "Buffer"
		}
		return false
	}
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			if isBufferType(field.Type) {
				return true
			}
		}
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if x.Sel.Name == "buf" || x.Sel.Name == "Payload" {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Get", "Clone", "FromBytes":
					found = true
				}
			}
		case *ast.ValueSpec:
			if isBufferType(x.Type) {
				found = true
			}
		}
		return !found
	})
	return found
}

// lintJourneyDrops flags Emit calls of data-plane event types whose
// journey argument is the literal 0 inside a function that has a packet
// buffer in scope.
func lintJourneyDrops(fset *token.FileSet, f *ast.File) int {
	bad := 0
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		checked := false
		hasBuf := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Emit" || len(call.Args) < 2 {
				return true
			}
			// Type argument: trace.MACTx (qualified) or MACTx (in-package).
			var typeName string
			switch t := call.Args[1].(type) {
			case *ast.SelectorExpr:
				typeName = t.Sel.Name
			case *ast.Ident:
				typeName = t.Name
			}
			if !journeyDataTypes[typeName] {
				return true
			}
			last, ok := call.Args[len(call.Args)-1].(*ast.BasicLit)
			if !ok || last.Kind != token.INT || last.Value != "0" {
				return true
			}
			if !checked {
				checked, hasBuf = true, hasBufferInScope(fn)
			}
			if hasBuf {
				fmt.Printf("%s: Emit(%s, ...) drops the journey ID (literal 0) with a packet buffer in scope\n",
					fset.Position(call.Pos()), typeName)
				bad++
			}
			return true
		})
	}
	return bad
}

// lintFile reports every fmt.Print*/print/println call in one source
// file and returns how many it found.
func lintFile(path string) int {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lintevents: %v\n", err)
		os.Exit(2)
	}
	bad := lintJourneyDrops(fset, f)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fn := call.Fun.(type) {
		case *ast.SelectorExpr:
			// fmt.Print, fmt.Printf, fmt.Println (not Sprintf/Fprintf:
			// formatting into values or explicit writers is fine).
			if pkg, ok := fn.X.(*ast.Ident); ok && pkg.Name == "fmt" &&
				strings.HasPrefix(fn.Sel.Name, "Print") {
				name = "fmt." + fn.Sel.Name
			}
		case *ast.Ident:
			// The predeclared print/println builtins.
			if fn.Name == "print" || fn.Name == "println" {
				name = fn.Name
			}
		}
		if name != "" {
			fmt.Printf("%s: %s\n", fset.Position(call.Pos()), name)
			bad++
		}
		return true
	})
	return bad
}
